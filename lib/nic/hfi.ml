open Nic_import

type rx_event =
  | Rx_packet of Wire.packet
  | Rx_expected of {
      tid_base : int;
      msg_id : int;
      offset : int;
      frag_len : int;
      msg_len : int;
      src_rank : int;
    }

type ctx = {
  id : int;
  events : rx_event Mailbox.t;
  rcv : Rcvarray.t;
}

(* A batched SDMA request train in progress (see the batching note below):
   the engine process sleeps until [t2.(n-1)] while the train's wire
   occupancy exists only as this precomputed schedule.  Any process that
   wants the wire mid-train calls {!maybe_abort_train}, which converts the
   not-yet-elapsed tail of the train back to per-packet processing at the
   exact boundary the per-packet path would be at. *)
type train = {
  tr_reqs : Sdma.request array;
  tr_t1 : float array; (* wire acquire instant of request i *)
  tr_t2 : float array; (* wire release instant of request i *)
  mutable tr_gen : int; (* guard generation: stale wake-ups are no-ops *)
  mutable tr_resume : (unit -> unit) option;
  mutable tr_abort_i : int; (* -1 while unaborted *)
  mutable tr_abort_gap : bool;
}

(* A batched PIO fragment train in progress: the sending process sleeps
   until [pt_t2.(n-1)] while per-fragment wire occupancy exists only as
   this precomputed schedule, and each fragment's fabric egress is a
   pre-scheduled event at its exact per-packet instant behind the
   [pt_abort_i] guard.  Any process that wants the wire mid-train calls
   {!maybe_abort_train}: fragments strictly before the abort boundary
   keep their pre-scheduled sends, the boundary fragment commits only if
   its wire occupancy already began, and the sender wakes at the exact
   per-packet boundary to emit the rest through the real per-packet
   sequence (CPU-store delay, wire [Resource], egress). *)
type ptrain = {
  pt_delay : float array; (* CPU store + packet overhead of fragment i *)
  pt_work : float array; (* wire occupancy of fragment i *)
  pt_t1 : float array; (* wire acquire instant of fragment i *)
  pt_t2 : float array; (* wire release / egress instant of fragment i *)
  pt_send : int -> unit; (* emit fragment i on the fabric, count stats *)
  mutable pt_gen : int; (* guard generation: stale wake-ups are no-ops *)
  mutable pt_resume : (unit -> unit) option;
  mutable pt_abort_i : int; (* [max_int] while unaborted *)
  mutable pt_abort_gap : bool;
}

type t = {
  sim : Sim.t;
  node : Node.t;
  fabric : Fabric.t;
  carry_payload : bool;
  rcv_entries : int;
  wire : Resource.t;
  sdma : Sdma.t;
  contexts : (int, ctx) Hashtbl.t;
  mutable next_ctx : int;
  mutable next_tx : int;
  completions : (unit -> unit) Queue.t;
  mutable eager_rx : int;
  mutable expected_rx : int;
  mutable pio_packets : int;
  mutable pio_bytes : int;
  mutable train : train option;
  mutable ptrain : ptrain option;
  (* Wire CRC fault hook: consulted once per packet put on the wire (and
     once per replay).  [None] in the sunny-day model; installing it also
     disables packet-train batching, since a train's closed form cannot
     know which of its packets would be corrupted. *)
  mutable crc_corrupt : (unit -> bool) option;
  mutable crc_retransmits : int;
  mutable train_aborts : int;
}

let sdma_irq_vector = 42

(* Device BARs live far above any DRAM/MCDRAM domain. *)
let bar_region_base = 0x3F00_0000_0000

let bar_region_stride = Addr.gib 1

let bar_ctx_window = Addr.mib 2

let bar_pa t = bar_region_base + (t.node.Node.id * bar_region_stride)

let wire_time len =
  float_of_int (len + (Costs.current ()).packet_overhead_bytes)
  /. (Costs.current ()).link_bandwidth

let place_expected t ctx ~tid_base ~offset ~frag_len ~payload =
  (* Walk the programmed run, skipping [offset] bytes, writing the
     fragment across entry boundaries. *)
  match payload with
  | None -> ()
  | Some data ->
    let entries = Rcvarray.entries_of_run ctx.rcv ~tid_base in
    let rec go entries skip written =
      if written >= frag_len then ()
      else begin
        match entries with
        | [] ->
          invalid_arg "Hfi: expected fragment overruns TID registration"
        | (e : Rcvarray.entry) :: rest ->
          if skip >= e.len then go rest (skip - e.len) written
          else begin
            let room = e.len - skip in
            let chunk = min room (frag_len - written) in
            Node.write_sub t.node (e.pa + skip) data ~off:written ~len:chunk;
            go rest 0 (written + chunk)
          end
      end
    in
    go entries offset 0

let rx_dispatch t (p : Wire.packet) =
  match Hashtbl.find_opt t.contexts p.dst_ctx with
  | None -> () (* context closed while packet in flight: hardware drops *)
  | Some ctx ->
    (match p.header with
     | Wire.Eager _ | Wire.Ctrl _ ->
       t.eager_rx <- t.eager_rx + 1;
       Mailbox.put ctx.events (Rx_packet p)
     | Wire.Expected { tid_base; msg_id; offset; frag_len; msg_len; src_rank } ->
       t.expected_rx <- t.expected_rx + 1;
       (* [offset] is message-relative (PSM bookkeeping); the TID run was
          registered for exactly this window, so placement starts at the
          run's beginning. *)
       place_expected t ctx ~tid_base ~offset:0 ~frag_len ~payload:p.payload;
       Mailbox.put ctx.events
         (Rx_expected { tid_base; msg_id; offset; frag_len; msg_len; src_rank }))

(* --- Packet-train batching ------------------------------------------------

   When a multi-event train (SDMA request list, PIO fragment loop) is
   provably alone on this HFI — at most one open context, the wire
   [Resource] idle, and no other SDMA transfer in flight — its per-event
   delays are deterministic, so the train can be charged in closed form:
   one event at the train's end, computed with the {e exact} sequence of
   float additions the per-event path performs (float [+.] is not
   associative, so no n*x shortcuts).  Per-packet wire overhead
   ([packet_overhead_bytes] in {!wire_time}) and per-request engine
   overhead are still charged for every packet of the train, and the wire
   resource is held for the train's duration, so contention semantics and
   the paper's 4 kB/10 kB request-size gap are untouched.  Any contention
   visible at train start falls back to per-packet emission. *)

(* Test hook: byte-identity of batched vs per-packet execution is checked
   by running both settings (test_nic); never mutated inside a sweep. *)
let batching = ref true

let train_alone t =
  Hashtbl.length t.contexts <= 1 && Resource.idle t.wire

(* Wake the sleeping engine process of train [tr] at absolute [time] —
   unless the train has been re-targeted since ([tr_gen] mismatch), in
   which case this guard is stale and fires as a no-op. *)
let schedule_guard t (tr : train) gen time =
  Sim.at t.sim time (fun () ->
      if tr.tr_gen = gen then
        match tr.tr_resume with
        | Some r ->
          tr.tr_resume <- None;
          r ()
        | None -> ())

let schedule_pguard t (tr : ptrain) gen time =
  Sim.at t.sim time (fun () ->
      if tr.pt_gen = gen then
        match tr.pt_resume with
        | Some r ->
          tr.pt_resume <- None;
          r ()
        | None -> ())

(* A process wants this HFI's wire while a batched SDMA train is in
   flight: convert the train's remaining tail back to per-packet
   processing, positioned exactly where the per-packet path would be at
   this instant.  Requests that already finished (strictly before now)
   are booked here, in schedule order, so the wire's accounting stream is
   the same as per-packet; the engine is re-targeted to wake at the
   current per-packet boundary — end of the in-service request (wire
   stays held until then, so the caller queues like any waiter), or end
   of the in-progress engine overhead gap (wire released now, as the
   per-packet engine would not be holding it). *)
let maybe_abort_train t =
  (match t.train with
   | None -> ()
   | Some tr ->
     t.train_aborts <- t.train_aborts + 1;
     let now = Sim.now t.sim in
     let n = Array.length tr.tr_reqs in
     let rec find i =
       if i >= n then n - 1 (* at train end: the engine wake is still pending *)
       else if tr.tr_t2.(i) > now then i
       else find (i + 1)
     in
     let i = find 0 in
     let gap = now < tr.tr_t1.(i) in
     for j = 0 to i - 1 do
       Resource.account t.wire ~waited:0. ~busy:(tr.tr_t2.(j) -. tr.tr_t1.(j))
     done;
     tr.tr_abort_i <- i;
     tr.tr_abort_gap <- gap;
     if gap then Resource.release t.wire;
     tr.tr_gen <- tr.tr_gen + 1;
     schedule_guard t tr tr.tr_gen (if gap then tr.tr_t1.(i) else tr.tr_t2.(i));
     t.train <- None;
     Fabric.disarm_train t.fabric ~node_id:t.node.Node.id);
  (* A PIO fragment train aborts by the same rewind rule.  Committed
     fragments (strictly before the boundary, plus the boundary itself
     when its wire occupancy already began) keep their pre-scheduled
     egress events; the sender is re-targeted to wake at the current
     per-packet boundary and emits the rest per-packet. *)
  match t.ptrain with
  | None -> ()
  | Some tr ->
    t.train_aborts <- t.train_aborts + 1;
    let now = Sim.now t.sim in
    let n = Array.length tr.pt_t2 in
    let rec find i =
      if i >= n then n - 1 (* at train end: the sender wake is still pending *)
      else if tr.pt_t2.(i) > now then i
      else find (i + 1)
    in
    let i = find 0 in
    let gap = now < tr.pt_t1.(i) in
    for j = 0 to i - 1 do
      Resource.account t.wire ~waited:0. ~busy:(tr.pt_t2.(j) -. tr.pt_t1.(j))
    done;
    tr.pt_abort_i <- i;
    tr.pt_abort_gap <- gap;
    if gap then Resource.release t.wire;
    tr.pt_gen <- tr.pt_gen + 1;
    schedule_pguard t tr tr.pt_gen (if gap then tr.pt_t1.(i) else tr.pt_t2.(i));
    t.ptrain <- None;
    Fabric.disarm_train t.fabric ~node_id:t.node.Node.id

let abort_train = maybe_abort_train

(* The link-transfer protocol detects a corrupted packet's CRC and
   replays it from the send buffer: the replay pays full wire occupancy
   (and may itself be corrupted again) but no fresh engine/CPU overhead —
   the descriptor was already processed.  Runs in the sending process's
   context, after the original [Resource.use] of the packet. *)
let rec crc_replay t ~work =
  match t.crc_corrupt with
  | None -> ()
  | Some bad ->
    if bad () then begin
      t.crc_retransmits <- t.crc_retransmits + 1;
      Resource.use t.wire ~work (fun () -> ());
      crc_replay t ~work
    end

(* Engine-context hook: charge a whole SDMA request train in closed form.
   Mirrors [Sdma.engine_loop]'s per-request path — delay
   [sdma_request_overhead], then occupy the wire for [wire_time len] —
   with the exact same sequence of float additions.  The engine sleeps
   until the train's end behind a movable guard; if any process touches
   the wire mid-train, {!maybe_abort_train} rewinds the uncommitted tail
   to per-packet processing, so contention is byte-identical too. *)
let sdma_batch t (tx : Sdma.tx) =
  (* Under [Sim.fast_forward], drop the one-context gate: an SDMA train
     never pre-sends (the packet leaves in [on_complete]), and every
     other wire user on this HFI — per-packet PIO, sibling engines, CRC
     replays — goes through {!maybe_abort_train} first, which rewinds
     the uncommitted tail to the exact per-packet boundary.  The idle
     wire at formation plus [in_flight = 1] are still required, so the
     only new trains are those whose contention, if any, arrives
     mid-flight — precisely what the abort machinery reproduces
     byte-for-byte (test_scale checks it). *)
  if
    not
      (!batching
       && (train_alone t || (!Sim.fast_forward && Resource.idle t.wire))
       && Sdma.in_flight t.sdma = 1
       && t.train = None
       && Option.is_none t.crc_corrupt
       && Fabric.quiet t.fabric
       && tx.Sdma.requests <> [])
  then false
  else begin
    let c = Costs.current () in
    ignore (Resource.acquire t.wire);
    let reqs = Array.of_list tx.Sdma.requests in
    let n = Array.length reqs in
    let t1 = Array.make n 0. in
    let t2 = Array.make n 0. in
    let cur = ref (Sim.now t.sim) in
    for i = 0 to n - 1 do
      let a = !cur +. c.Costs.sdma_request_overhead in
      let b = a +. wire_time reqs.(i).Sdma.len in
      t1.(i) <- a;
      t2.(i) <- b;
      cur := b
    done;
    let tr =
      { tr_reqs = reqs; tr_t1 = t1; tr_t2 = t2; tr_gen = 0;
        tr_resume = None; tr_abort_i = -1; tr_abort_gap = false }
    in
    t.train <- Some tr;
    (* Tell the fabric a train is live: the decomposed (sharded) walk
       only schedules contention aborts to armed nodes. *)
    Fabric.arm_train t.fabric ~node_id:t.node.Node.id;
    Sim.suspend t.sim (fun resume ->
        tr.tr_resume <- Some resume;
        schedule_guard t tr 0 t2.(n - 1));
    (match tr.tr_abort_i with
     | -1 ->
       (* Committed untouched: book every request, in order, and hand the
          wire back at the exact instant the last request would end. *)
       for i = 0 to n - 1 do
         Resource.account t.wire ~waited:0. ~busy:(t2.(i) -. t1.(i))
       done;
       t.train <- None;
       Fabric.disarm_train t.fabric ~node_id:t.node.Node.id;
       Resource.release t.wire;
       Sim.note_elided t.sim ((2 * n) - 2)
     | i ->
       (* Aborted: [t.train] was already cleared; we woke at the exact
          per-packet boundary and continue with the real per-packet code
          (wire contention with the aborter included). *)
       let per_packet j =
         Resource.use t.wire ~work:(wire_time reqs.(j).Sdma.len) (fun () -> ())
       in
       let rest first =
         for j = first to n - 1 do
           Sim.delay t.sim (Costs.current ()).Costs.sdma_request_overhead;
           per_packet j
         done
       in
       if tr.tr_abort_gap then begin
         (* Woke at t1.(i): request [i]'s engine overhead has elapsed and
            the wire was released at abort time; send it per-packet. *)
         per_packet i;
         rest (i + 1);
         Sim.note_elided t.sim ((2 * i) - 2)
       end
       else begin
         (* Woke at t2.(i): request [i] just left the wire; book it and
            hand the wire to whoever queued during it. *)
         Resource.account t.wire ~waited:0. ~busy:(t2.(i) -. t1.(i));
         Resource.release t.wire;
         rest (i + 1);
         Sim.note_elided t.sim ((2 * i) - 1)
       end);
    true
  end

let create sim ~node ~fabric ?(carry_payload = false)
    ?(rcv_entries = 2048) () =
  let wire =
    Resource.create sim
      ~name:(Printf.sprintf "hfi%d-wire" node.Node.id)
      ~capacity:1
  in
  (* [transmit] is handed to [Sdma.create] before [t] exists; the forward
     reference lets per-packet engines abort a sibling engine's batched
     train before contending for the wire. *)
  let tref = ref None in
  let transmit (req : Sdma.request) =
    (match !tref with Some t -> maybe_abort_train t | None -> ());
    Resource.use wire ~work:(wire_time req.len) (fun () -> ());
    match !tref with
    | Some t -> crc_replay t ~work:(wire_time req.len)
    | None -> ()
  in
  let t =
    { sim; node; fabric; carry_payload; rcv_entries; wire;
      sdma =
        Sdma.create sim ~n_engines:(Costs.current ()).sdma_engines ~ring_slots:64
          ~transmit;
      contexts = Hashtbl.create 64;
      next_ctx = 0;
      next_tx = 0;
      completions = Queue.create ();
      eager_rx = 0;
      expected_rx = 0;
      pio_packets = 0;
      pio_bytes = 0;
      train = None;
      ptrain = None;
      crc_corrupt = None;
      crc_retransmits = 0;
      train_aborts = 0 }
  in
  tref := Some t;
  Fabric.attach fabric ~node_id:node.Node.id ~rx:(rx_dispatch t);
  (* Mid-flight link contention (fat-tree topologies only) must rewind
     any batched train to per-packet processing, per the batching
     invariant; the hook never fires under the flat topology. *)
  Fabric.set_train_abort fabric ~node_id:node.Node.id
    ~abort:(fun () -> maybe_abort_train t);
  Sdma.set_batch t.sdma (sdma_batch t);
  t

let node t = t.node

let node_id t = t.node.Node.id

(* Fabric fault-domain passthroughs for the transport layers (lib/psm
   depends on this facade, not on Fabric directly). *)
let path_armed t = Fabric.faults_armed t.fabric

let path_reachable t ~dst_node ~dst_ctx =
  Fabric.path_reachable t.fabric ~src:(node_id t) ~dst:dst_node ~dst_ctx

let note_path_retry t = Fabric.note_retry t.fabric

let note_path_degraded t = Fabric.note_degraded t.fabric

let fabric_fault_stats t = Fabric.fault_stats t.fabric

let open_context t =
  let id = t.next_ctx in
  t.next_ctx <- id + 1;
  let ctx =
    { id; events = Mailbox.create t.sim;
      rcv = Rcvarray.create t.sim ~n_entries:t.rcv_entries }
  in
  Hashtbl.add t.contexts id ctx;
  ctx

let close_context t ctx = Hashtbl.remove t.contexts ctx.id

let ctx_id ctx = ctx.id

let context t id = Hashtbl.find_opt t.contexts id

let rx_events ctx = ctx.events

let rcvarray ctx = ctx.rcv

let rewrite_eager_hdr hdr ~offset ~frag_len =
  match hdr with
  | Wire.Eager e -> Wire.Eager { e with offset = e.offset + offset; frag_len }
  | Wire.Expected e ->
    Wire.Expected { e with offset = e.offset + offset; frag_len }
  | Wire.Ctrl _ as c -> c

let slice_payload payload ~offset ~len =
  match payload with
  | None -> None
  | Some b -> Some (Bytes.sub b offset len)

(* Closed-form variant of [pio_send]'s fragment loop (see the batching
   note above [train_alone]): one wake for the whole train; every
   fragment still pays its own CPU-store and wire-overhead arithmetic
   and leaves on the fabric at its exact per-packet egress instant.
   Unlike the original pre-send-and-sleep form, the train registers as
   [t.ptrain] and each egress sits behind the abort guard, so mid-train
   wire contention — a sibling sender on this node, or a fabric
   link-contention hook — rewinds the uncommitted tail to the exact
   per-packet boundary instead of holding the wire against a contender
   the per-packet path would have admitted into a CPU-store gap.  That
   keeps batched-vs-per-packet byte-identity even for workloads with
   concurrent senders per node, and makes the formation gate's
   [Fabric.route_quiet] reading (transient link state, which the
   decomposed sharded walk materialises on different sub-intervals)
   results-neutral: whichever engine forms the train, contention aborts
   it back onto the one shared path. *)
let pio_train t ~dst_node ~dst_ctx ~hdr ~len ?payload c =
  ignore (Resource.acquire t.wire);
  let n =
    if len = 0 then 1
    else (len + c.Costs.pio_packet_size - 1) / c.Costs.pio_packet_size
  in
  let delay = Array.make n 0. in
  let work = Array.make n 0. in
  let t1 = Array.make n 0. in
  let t2 = Array.make n 0. in
  let frags = Array.make n 0 in
  let offs = Array.make n 0 in
  let cur = ref (Sim.now t.sim) in
  let off = ref 0 in
  for i = 0 to n - 1 do
    let frag = if len = 0 then 0 else min c.Costs.pio_packet_size (len - !off) in
    frags.(i) <- frag;
    offs.(i) <- !off;
    delay.(i) <-
      (if len = 0 then c.Costs.pio_packet_overhead
       else
         c.Costs.pio_packet_overhead
         +. (float_of_int frag /. c.Costs.pio_cpu_bandwidth));
    work.(i) <- wire_time frag;
    let a = !cur +. delay.(i) in
    let b = a +. work.(i) in
    t1.(i) <- a;
    t2.(i) <- b;
    cur := b;
    off := !off + frag
  done;
  let send i =
    t.pio_packets <- t.pio_packets + 1;
    if len = 0 then
      Fabric.send t.fabric
        { src_node = node_id t; dst_node; dst_ctx;
          wire_len = Wire.header_bytes; header = hdr; payload = None }
    else begin
      let frag = frags.(i) in
      t.pio_bytes <- t.pio_bytes + frag;
      let payload =
        if t.carry_payload then
          slice_payload payload ~offset:offs.(i) ~len:frag
        else None
      in
      Fabric.send t.fabric
        { src_node = node_id t; dst_node; dst_ctx;
          wire_len = frag + Wire.header_bytes;
          header = rewrite_eager_hdr hdr ~offset:offs.(i) ~frag_len:frag;
          payload }
    end
  in
  let tr =
    { pt_delay = delay; pt_work = work; pt_t1 = t1; pt_t2 = t2;
      pt_send = send; pt_gen = 0; pt_resume = None; pt_abort_i = max_int;
      pt_abort_gap = false }
  in
  t.ptrain <- Some tr;
  Fabric.arm_train t.fabric ~node_id:(node_id t);
  (* Each fragment's egress fires at its exact per-packet instant — the
     end of its wire occupancy — unless an abort rewound it first. *)
  for i = 0 to n - 1 do
    Sim.at t.sim t2.(i) (fun () ->
        if i < tr.pt_abort_i || (i = tr.pt_abort_i && not tr.pt_abort_gap)
        then tr.pt_send i)
  done;
  Sim.suspend t.sim (fun resume ->
      tr.pt_resume <- Some resume;
      schedule_pguard t tr 0 t2.(n - 1));
  (match tr.pt_abort_i with
   | i when i = max_int ->
     (* Committed untouched: book every fragment, in order, and hand the
        wire back at the exact instant the last one leaves. *)
     for i = 0 to n - 1 do
       Resource.account t.wire ~waited:0. ~busy:(t2.(i) -. t1.(i))
     done;
     t.ptrain <- None;
     Fabric.disarm_train t.fabric ~node_id:(node_id t);
     Resource.release t.wire;
     Sim.note_elided t.sim (n - 1)
   | i ->
     (* Aborted: [t.ptrain] was already cleared; we woke at the exact
        per-packet boundary and continue with the real per-packet
        sequence (wire contention with the aborter included, and
        sibling-train aborts before each wire use, like [use_wire]). *)
     let per_packet j =
       maybe_abort_train t;
       Resource.use t.wire ~work:tr.pt_work.(j) (fun () -> ());
       crc_replay t ~work:tr.pt_work.(j);
       tr.pt_send j
     in
     let rest first =
       for j = first to n - 1 do
         Sim.delay t.sim tr.pt_delay.(j);
         per_packet j
       done
     in
     if tr.pt_abort_gap then begin
       (* Woke at t1.(i): fragment [i]'s CPU store has elapsed and the
          wire was released at abort time; send it per-packet. *)
       per_packet i;
       rest (i + 1);
       Sim.note_elided t.sim (max 0 (i - 1))
     end
     else begin
       (* Woke at t2.(i): fragment [i] just left the wire (its guarded
          egress fired); book it and hand the wire to whoever queued
          during it. *)
       Resource.account t.wire ~waited:0. ~busy:(t2.(i) -. t1.(i));
       Resource.release t.wire;
       rest (i + 1);
       Sim.note_elided t.sim i
     end)

let pio_send t ~dst_node ~dst_ctx ~hdr ~len ?payload () =
  let c = Costs.current () in
  let sp = Span.begin_ t.sim ~cat:"pio" ~name:"pio_send" in
  (* Single-phase ledger: the batched train path has no interior
     suspension points shared with the per-packet path, so only the
     end-to-end boundaries are result-determined across engine modes. *)
  let lg = Ledger.begin_ t.sim ~op:"pio/send" in
  (if
    !batching
    && dst_node <> node_id t
    && train_alone t
    && Sdma.in_flight t.sdma = 0
    && Option.is_none t.crc_corrupt
    && Fabric.route_quiet t.fabric ~src:(node_id t) ~dst:dst_node ~dst_ctx
  then pio_train t ~dst_node ~dst_ctx ~hdr ~len ?payload c
  else begin
  (* Loopback (shared-memory-style) traffic never touches the link. *)
  let use_wire work =
    if dst_node <> node_id t then begin
      maybe_abort_train t;
      Resource.use t.wire ~work (fun () -> ());
      crc_replay t ~work
    end
  in
  if len = 0 then begin
    (* Zero-byte message: a single header-only packet. *)
    Sim.delay t.sim c.pio_packet_overhead;
    use_wire (wire_time 0);
    t.pio_packets <- t.pio_packets + 1;
    Fabric.send t.fabric
      { src_node = node_id t; dst_node; dst_ctx; wire_len = Wire.header_bytes;
        header = hdr; payload = None }
  end
  else begin
    let rec go offset =
      if offset < len then begin
        let frag = min c.pio_packet_size (len - offset) in
        (* CPU stores the payload into the device send buffer. *)
        Sim.delay t.sim
          (c.pio_packet_overhead
           +. (float_of_int frag /. c.pio_cpu_bandwidth));
        use_wire (wire_time frag);
        t.pio_packets <- t.pio_packets + 1;
        t.pio_bytes <- t.pio_bytes + frag;
        let payload =
          if t.carry_payload then slice_payload payload ~offset ~len:frag
          else None
        in
        Fabric.send t.fabric
          { src_node = node_id t; dst_node; dst_ctx;
            wire_len = frag + Wire.header_bytes;
            header = rewrite_eager_hdr hdr ~offset ~frag_len:frag;
            payload };
        go (offset + frag)
      end
    in
    go 0
  end
  end);
  Span.end_with t.sim sp (fun () ->
      [ ("dst", string_of_int dst_node); ("len", string_of_int len) ]);
  Ledger.close t.sim lg ~phase:"send"

let read_requests t reqs =
  let total = List.fold_left (fun acc (r : Sdma.request) -> acc + r.len) 0 reqs in
  let buf = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun (r : Sdma.request) ->
      Node.read_into t.node r.pa buf ~off:!off ~len:r.len;
      off := !off + r.len)
    reqs;
  buf

let sdma_submit t ~channel ~dst_node ~dst_ctx ~hdr ~reqs ~on_complete () =
  let total = List.fold_left (fun acc (r : Sdma.request) -> acc + r.len) 0 reqs in
  (* Tracing off is the common case: don't pay List.length/Wire.describe
     on the hot path unless the line will actually be emitted. *)
  if Trace.enabled Trace.Debug then
    Trace.debug t.sim "hfi" "sdma_submit ch=%d dst=%d/%d %d reqs %d B (%s)"
      channel dst_node dst_ctx (List.length reqs) total (Wire.describe hdr);
  let tx_id = t.next_tx in
  t.next_tx <- tx_id + 1;
  let payload = if t.carry_payload then Some (read_requests t reqs) else None in
  let lg = Ledger.begin_ t.sim ~op:"sdma/tx" in
  let finish () =
    (* DMA done: packet leaves for the destination, and the completion
       IRQ fires on this node. *)
    Fabric.send t.fabric
      { src_node = node_id t; dst_node; dst_ctx;
        wire_len = total + Wire.header_bytes; header = hdr; payload };
    Queue.add on_complete t.completions;
    Irq.raise_irq t.node.Node.irq ~vector:sdma_irq_vector;
    Ledger.close t.sim lg ~phase:"completion"
  in
  Sdma.submit t.sdma
    { tx_id; channel; requests = reqs; total_bytes = total;
      on_complete = finish; lg }

let sdma t = t.sdma

let set_crc_fault t f = t.crc_corrupt <- f

let crc_retransmits t = t.crc_retransmits

let train_aborts t = t.train_aborts

let wire t = t.wire

let eager_packets_rx t = t.eager_rx

let expected_msgs_rx t = t.expected_rx

let pio_packets t = t.pio_packets

let pio_bytes t = t.pio_bytes

(* The completion queue is drained by the driver's IRQ handler. *)
let drain_completions t =
  let rec go acc =
    match Queue.take_opt t.completions with
    | Some cb -> go (cb :: acc)
    | None -> List.rev acc
  in
  go []

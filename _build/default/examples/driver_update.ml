(* The driver-update workflow of paper Section 3.2.

   "Since the beginning of the development of PicoDriver, we have already
   updated twice to Intel's new releases.  With the DWARF based header
   generation the porting effort has been on the order of hours."

   This example plays the vendor: ship driver v1, extract offsets, then
   ship a v2 whose struct layout silently changed (a new field in the
   middle), and show that
     - offsets extracted from the v1 binary read GARBAGE against v2 (the
       runtime failure "hard to diagnose" that manual porting risks),
     - re-running dwarf-extract-struct against the v2 binary repairs the
       fast path with zero code changes.

   Run with: dune exec examples/driver_update.exe *)

module Ctype = Pico_dwarf.Ctype
module Compile = Pico_dwarf.Compile
module Encode = Pico_dwarf.Encode
module Extract = Pico_dwarf.Extract
module Node = Pico_hw.Node
module Sim = Pico_engine.Sim

(* Vendor driver, release 1. *)
let ctxtdata_v1 : Ctype.decl =
  { name = "hfi1_ctxtdata";
    members =
      [ ("ctxt", Ctype.u32);
        ("flags", Ctype.u64);
        ("tid_used", Ctype.u32) ] }

(* Release 2: a lock and a statistics field landed in the middle — just
   like a real vendor update. *)
let ctxtdata_v2 : Ctype.decl =
  { name = "hfi1_ctxtdata";
    members =
      [ ("ctxt", Ctype.u32);
        ("lock", Ctype.u64)            (* new *);
        ("flags", Ctype.u64);
        ("rcv_errors", Ctype.u32)      (* new *);
        ("tid_used", Ctype.u32) ] }

let binary_of decl =
  let c = Compile.create ~producer:"vendor-cc" () in
  Compile.add_struct c decl;
  Encode.encode (Compile.finish c)

let extract_offsets sections =
  match
    Extract.extract (Encode.parse sections) ~struct_name:"hfi1_ctxtdata"
      ~fields:[ "ctxt"; "flags"; "tid_used" ]
  with
  | Ok ex -> ex
  | Error e -> failwith e

let () =
  let sim = Sim.create () in
  let node = Pico_hw.Node.create_knl sim ~id:0 () in
  let pa = Option.get (Node.alloc_frames node 1) in

  (* Port once against release 1. *)
  let v1 = extract_offsets (binary_of ctxtdata_v1) in
  let off_v1 = (Extract.field v1 "tid_used").Extract.f_offset in
  Printf.printf "v1: tid_used @ offset %d\n" off_v1;

  (* The vendor ships release 2; the driver writes through the NEW
     layout. *)
  let v2_layout = Ctype.layout `Struct ctxtdata_v2 in
  let off name =
    (List.find (fun m -> m.Ctype.m_name = name) v2_layout).Ctype.m_offset
  in
  Node.write_u32 node (pa + off "ctxt") 7l;
  Node.write_u32 node (pa + off "tid_used") 42l;
  Node.write_u32 node (pa + off "rcv_errors") 999l;

  (* Stale fast path: v1 offsets against v2 memory. *)
  let stale = Node.read_u32 node (pa + off_v1) in
  Printf.printf "stale fast path reads tid_used = %ld  %s\n" stale
    (if stale = 42l then "(accidentally fine)" else "(GARBAGE - would corrupt)");

  (* Re-extract from the v2 binary: hours, not weeks. *)
  let v2 = extract_offsets (binary_of ctxtdata_v2) in
  let off_v2 = (Extract.field v2 "tid_used").Extract.f_offset in
  let fresh = Node.read_u32 node (pa + off_v2) in
  Printf.printf "re-extracted: tid_used @ offset %d -> reads %ld  %s\n" off_v2
    fresh
    (if fresh = 42l then "(correct)" else "(BUG)");

  print_newline ();
  print_string (Extract.render_c_header v2);
  if fresh <> 42l then exit 1

exception Not_in_process

(* Hot-path events are resumptions of processes blocked in [delay]; those
   go through a [cell] taken from a per-simulator free list, so the
   steady-state event loop allocates no closure per event.  [Call] covers
   everything else (spawn, [at]/[after] callbacks, suspend wake-ups). *)
type event =
  | Call of (unit -> unit)
  | Resume of cell

and cell = {
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable cname : string option;
  boxed : event; (* [Resume self], allocated once per cell *)
}

(* One traced interval of simulated time (see Span for the user API).
   The simulator only stores spans; it never reads them. *)
type span = {
  sp_cat : string;
  sp_name : string;
  sp_track : string;
  sp_begin : float;
  mutable sp_end : float; (* nan until ended *)
  mutable sp_args : (string * string) list;
}

(* One phase-attributed latency ledger (see Ledger for the user API).
   Phases are contiguous [(name, seg_start, seg_end)] segments sharing
   boundary timestamps, so they partition [ld_begin, ld_end] with no
   gaps or overlaps by construction; [ld_total] is the running float sum
   of segment durations folded in record order, so re-summing the stored
   segments reproduces it bit-exactly.  The simulator only stores
   ledgers; it never reads them. *)
type ledger = {
  ld_op : string;
  ld_track : string;
  ld_begin : float;
  mutable ld_cursor : float;
  mutable ld_end : float; (* nan until closed *)
  mutable ld_phases : (string * float * float) list; (* reverse order *)
  mutable ld_total : float;
}

(* Conservative event sharding (off by default, see [shard_init]): the
   event population is partitioned into per-shard heaps with per-shard
   sequence counters, clocks and resume-cell pools.  Shards run in
   epoch-barrier rounds of [lookahead] simulated nanoseconds; an event
   scheduled into another shard is buffered on the source shard and
   merged at the next barrier in content order — sorted by
   [(key, src_shard, src_order)], which no shard execution schedule can
   perturb — so a sharded run is deterministic by construction and
   byte-identical to the same run with sharding off. *)
type shard = {
  sh_id : int;
  sh_queue : event Heap.t;
  mutable sh_seq : int;
  mutable sh_now : float;
  mutable sh_processed : int;
  mutable sh_peak : int;
  mutable sh_pool : cell array;
  mutable sh_pool_n : int;
  mutable sh_reused : int;
  (* outgoing cross-shard events of the current epoch, reverse order *)
  mutable sh_out : pending list;
  mutable sh_order : int;
}

and pending = {
  p_key : float;
  p_src : int;
  p_ord : int;
  p_dst : int;
  p_ev : event;
}

type t = {
  mutable now : float;
  queue : event Heap.t;
  mutable seq : int;
  mutable processed : int;
  mutable current : string option;
  mutable running : bool; (* a process frame is on the stack *)
  (* free list of resume cells, as a stack *)
  mutable pool : cell array;
  mutable pool_n : int;
  (* observability *)
  mutable peak_heap : int;
  mutable elided : int;
  mutable reused : int;
  (* span tracing (empty unless Span.set_on true) *)
  mutable spans : span list; (* reverse begin order *)
  mutable dropped_spans : int; (* still-open spans discarded by take_spans *)
  (* latency ledgers and timeline steps (empty unless Ledger.set_on true) *)
  mutable ledgers : ledger list; (* closed ledgers, reverse close order *)
  mutable steps : (string * float * int) list; (* series, time, +/-delta *)
  mutable label : string;
  (* sharding ([shards] empty = off, the default) *)
  mutable shards : shard array;
  mutable exec : shard option; (* shard whose event is executing *)
  mutable ambient : shard option; (* build-time binding, see [with_shard] *)
  mutable engaged : bool; (* epoch-barrier mode active *)
  mutable engage_req : bool;
  mutable lookahead : float;
  (* optional per-(src,dst) cross-shard latency floor, tighter than or
     equal to [lookahead]; [lookahead] still sets the epoch length *)
  mutable pair_bound : (int -> int -> float) option;
  mutable epoch_end : float;
  mutable barrier_rounds : int;
  mutable epochs_elided : int;
  mutable xshard : int;
}

type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Until : t * float -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

(* Steady-state fast-forward (test-visible switch, like [Hfi.batching]):
   when true, model layers that own an elide-events-never-costs closed
   form (noise clocks, SDMA packet trains) may engage it beyond their
   conservative default gates.  Semantics must stay byte-identical —
   test/test_scale.ml checks on-vs-off equivalence.  Never mutated
   inside a sweep. *)
let fast_forward = ref false

let create () =
  { now = 0.; queue = Heap.create (); seq = 0; processed = 0;
    current = None; running = false; pool = [||]; pool_n = 0;
    peak_heap = 0; elided = 0; reused = 0; spans = []; dropped_spans = 0;
    ledgers = []; steps = []; label = "";
    shards = [||]; exec = None; ambient = None; engaged = false;
    engage_req = false; lookahead = 0.; pair_bound = None; epoch_end = 0.;
    barrier_rounds = 0; epochs_elided = 0; xshard = 0 }

let now t = t.now

let sharded t = Array.length t.shards > 0

let shard_init t ~shards ?pair_bound ~lookahead () =
  if sharded t then invalid_arg "Sim.shard_init: already sharded";
  if t.seq > 0 || not (Heap.is_empty t.queue) then
    invalid_arg "Sim.shard_init: events already scheduled";
  if shards <= 0 then invalid_arg "Sim.shard_init: shards must be > 0";
  if not (Float.is_finite lookahead) || lookahead <= 0. then
    invalid_arg "Sim.shard_init: lookahead must be positive";
  (match pair_bound with
   | None -> ()
   | Some f ->
     (* The epoch length must be conservative: no pair may promise less
        latency than one epoch, or a barrier could miss a due event. *)
     for s = 0 to shards - 1 do
       for d = 0 to shards - 1 do
         if s <> d then begin
           let b = f s d in
           if not (Float.is_finite b) || b <= 0. then
             invalid_arg "Sim.shard_init: pair bound must be positive";
           if b < lookahead then
             invalid_arg
               "Sim.shard_init: pair bound below the epoch lookahead"
         end
       done
     done);
  t.lookahead <- lookahead;
  t.pair_bound <- pair_bound;
  t.shards <-
    Array.init shards (fun sh_id ->
        { sh_id; sh_queue = Heap.create (); sh_seq = 0; sh_now = 0.;
          sh_processed = 0; sh_peak = 0; sh_pool = [||]; sh_pool_n = 0;
          sh_reused = 0; sh_out = []; sh_order = 0 })

let shard_engage t = if sharded t then t.engage_req <- true

let with_shard t i f =
  if not (sharded t) then f ()
  else begin
    let saved = t.ambient in
    t.ambient <- Some t.shards.(i);
    Fun.protect ~finally:(fun () -> t.ambient <- saved) f
  end

let make_cell () =
  let rec c = { cont = None; cname = None; boxed = Resume c } in
  c

let acquire_cell t =
  match t.exec with
  | None ->
    if t.pool_n = 0 then make_cell ()
    else begin
      t.pool_n <- t.pool_n - 1;
      t.reused <- t.reused + 1;
      t.pool.(t.pool_n)
    end
  | Some sh ->
    if sh.sh_pool_n = 0 then make_cell ()
    else begin
      sh.sh_pool_n <- sh.sh_pool_n - 1;
      sh.sh_reused <- sh.sh_reused + 1;
      sh.sh_pool.(sh.sh_pool_n)
    end

let release_cell t c =
  match t.exec with
  | None ->
    let cap = Array.length t.pool in
    if t.pool_n = cap then begin
      let ncap = if cap = 0 then 32 else cap * 2 in
      let np = Array.make ncap c in
      Array.blit t.pool 0 np 0 cap;
      t.pool <- np
    end;
    t.pool.(t.pool_n) <- c;
    t.pool_n <- t.pool_n + 1
  | Some sh ->
    let cap = Array.length sh.sh_pool in
    if sh.sh_pool_n = cap then begin
      let ncap = if cap = 0 then 32 else cap * 2 in
      let np = Array.make ncap c in
      Array.blit sh.sh_pool 0 np 0 cap;
      sh.sh_pool <- np
    end;
    sh.sh_pool.(sh.sh_pool_n) <- c;
    sh.sh_pool_n <- sh.sh_pool_n + 1

(* Tail-of-instant band: an event scheduled with [~tail:true] sorts
   after every normally-scheduled event at the same instant in the same
   heap, no matter when it was pushed — even after events pushed later,
   which take fresh (sub-band) sequence numbers.  Sequence counters
   never come near the band (2^40 events per heap), and tail events
   keep push order among themselves.  Both engines thus agree that a
   tail event runs once its instant is otherwise exhausted, which is
   what makes the fabric's same-instant arrival batches (Fabric,
   [~ordered:true]) independent of the heap-insertion schedule. *)
let tail_band = 1 lsl 40

(* Push into one shard's heap, clamping to the executing clock exactly
   like the unsharded path. *)
let push_shard ?(tail = false) t sh time ev =
  let time = if time < t.now then t.now else time in
  let seq = if tail then sh.sh_seq lor tail_band else sh.sh_seq in
  Heap.push sh.sh_queue ~key:time ~seq ev;
  sh.sh_seq <- sh.sh_seq + 1;
  let d = Heap.length sh.sh_queue in
  if d > sh.sh_peak then sh.sh_peak <- d

(* Deliver [ev] to shard [sh].  In epoch mode a cross-shard event is
   buffered on the source shard for the barrier merge; the lookahead
   contract (every cross-shard latency >= [lookahead]) guarantees it
   cannot be due before the next barrier. *)
let schedule_to ?(tail = false) t sh time ev =
  match t.exec with
  | Some src when t.engaged && src != sh ->
    if tail then
      invalid_arg "Sim: tail event must target the executing shard";
    if time < t.epoch_end then
      invalid_arg
        (Printf.sprintf
           "Sim: cross-shard event at %.1f below the lookahead horizon %.1f"
           time t.epoch_end);
    (match t.pair_bound with
     | Some f when time < t.now +. f src.sh_id sh.sh_id ->
       invalid_arg
         (Printf.sprintf
            "Sim: cross-shard event at %.1f below the %d->%d pair bound %.1f"
            time src.sh_id sh.sh_id (f src.sh_id sh.sh_id))
     | _ -> ());
    src.sh_out <-
      { p_key = time; p_src = src.sh_id; p_ord = src.sh_order;
        p_dst = sh.sh_id; p_ev = ev }
      :: src.sh_out;
    src.sh_order <- src.sh_order + 1
  | _ -> push_shard ~tail t sh time ev

(* Default target for an event with no explicit shard: the executing
   shard, else the build-time ambient binding, else shard 0. *)
let default_shard t =
  match t.exec with
  | Some sh -> sh
  | None -> (match t.ambient with Some sh -> sh | None -> t.shards.(0))

let schedule_event ?(tail = false) t time ev =
  if Array.length t.shards = 0 then begin
    let time = if time < t.now then t.now else time in
    let seq = if tail then t.seq lor tail_band else t.seq in
    Heap.push t.queue ~key:time ~seq ev;
    t.seq <- t.seq + 1;
    let d = Heap.length t.queue in
    if d > t.peak_heap then t.peak_heap <- d
  end
  else schedule_to ~tail t (default_shard t) time ev

let schedule t time f = schedule_event t time (Call f)

let at t ?shard ?(tail = false) time f =
  match shard with
  | Some i when Array.length t.shards > 0 ->
    schedule_to ~tail t t.shards.(i) time (Call f)
  | _ -> schedule_event ~tail t time (Call f)

let after t dt f = schedule t (t.now +. dt) f

let in_process t = t.running

let current_name t = t.current

(* Run [f] as a process body: install the effect handler that turns Delay,
   Until and Suspend into event-queue operations. *)
let handle_process t name f =
  let open Effect.Deep in
  let some_name = Some name in
  match_with
    (fun () ->
      t.running <- true;
      t.current <- some_name;
      f ())
    ()
    {
      retc = (fun () -> t.running <- false; t.current <- None);
      exnc = (fun e -> t.running <- false; t.current <- None; raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t', dt) when t' == t ->
            Some
              (fun (k : (a, _) continuation) ->
                let c = acquire_cell t in
                c.cont <- Some k;
                c.cname <- some_name;
                schedule_event t (t.now +. dt) c.boxed;
                t.running <- false;
                t.current <- None)
          | Until (t', time) when t' == t ->
            Some
              (fun (k : (a, _) continuation) ->
                let c = acquire_cell t in
                c.cont <- Some k;
                c.cname <- some_name;
                schedule_event t time c.boxed;
                t.running <- false;
                t.current <- None)
          | Suspend (t', register) when t' == t ->
            Some
              (fun (k : (a, _) continuation) ->
                (* A process's continuation belongs to its home shard:
                   resume from wherever lands the wake-up event where the
                   process suspended, never where the resumer runs. *)
                let home = t.exec in
                let resumed = ref false in
                let resume () =
                  if !resumed then
                    invalid_arg "Sim.suspend: resume called twice";
                  resumed := true;
                  let wake () =
                    t.running <- true;
                    t.current <- some_name;
                    continue k ()
                  in
                  match home with
                  | None -> schedule t t.now wake
                  | Some sh -> schedule_to t sh t.now (Call wake)
                in
                register resume;
                t.running <- false;
                t.current <- None)
          | _ -> None);
    }

let spawn t ?(name = "proc") ?shard f =
  let ev = Call (fun () -> handle_process t name f) in
  if Array.length t.shards = 0 then schedule_event t t.now ev
  else
    let sh =
      match shard with Some i -> t.shards.(i) | None -> default_shard t
    in
    schedule_to t sh t.now ev

let delay t dt =
  if not t.running then raise Not_in_process;
  if not (Float.is_finite dt) || dt < 0. then
    invalid_arg "Sim.delay: negative or non-finite delay";
  Effect.perform (Delay (t, dt))

let delay_until t time =
  if not t.running then raise Not_in_process;
  if not (Float.is_finite time) then
    invalid_arg "Sim.delay_until: non-finite time";
  Effect.perform (Until (t, time))

let suspend t register =
  if not t.running then raise Not_in_process;
  Effect.perform (Suspend (t, register))

let yield t = delay t 0.

let exec_event t ev =
  match ev with
  | Call f -> f ()
  | Resume c ->
    let k = match c.cont with Some k -> k | None -> assert false in
    let nm = c.cname in
    c.cont <- None;
    c.cname <- None;
    release_cell t c;
    t.running <- true;
    t.current <- nm;
    Effect.Deep.continue k ()

let run_unsharded ?until t =
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if Heap.is_empty t.queue then continue_ := false
    else begin
      let key = Heap.top_key t.queue in
      match until with
      | Some limit when key > limit ->
        t.now <- limit;
        continue_ := false
      | _ ->
        t.now <- key;
        t.processed <- t.processed + 1;
        incr count;
        exec_event t (Heap.pop t.queue)
    end
  done;
  !count

(* Lowest-keyed shard, ties to the lowest shard id: the merged order the
   prologue executes in.  Returns [(-1, infinity)] when all drained. *)
let min_shard t =
  let best = ref (-1) and bk = ref infinity in
  Array.iter
    (fun sh ->
      if not (Heap.is_empty sh.sh_queue) then begin
        let k = Heap.top_key sh.sh_queue in
        if k < !bk then begin
          bk := k;
          best := sh.sh_id
        end
      end)
    t.shards;
  (!best, !bk)

(* Barrier: merge every shard's buffered cross-shard events in content
   order — (key, source shard, per-source order) is a total order no
   execution schedule can perturb — assigning destination sequence
   numbers in that merged order. *)
let merge_pending t =
  let pend =
    Array.fold_left
      (fun acc sh ->
        let out = sh.sh_out in
        sh.sh_out <- [];
        List.rev_append out acc)
      [] t.shards
  in
  match pend with
  | [] -> ()
  | _ ->
    let sorted =
      List.sort
        (fun a b ->
          let c = Float.compare a.p_key b.p_key in
          if c <> 0 then c
          else begin
            let c = compare a.p_src b.p_src in
            if c <> 0 then c else compare a.p_ord b.p_ord
          end)
        pend
    in
    List.iter
      (fun p ->
        let dst = t.shards.(p.p_dst) in
        Heap.push dst.sh_queue ~key:p.p_key ~seq:dst.sh_seq p.p_ev;
        dst.sh_seq <- dst.sh_seq + 1;
        let d = Heap.length dst.sh_queue in
        if d > dst.sh_peak then dst.sh_peak <- d;
        t.xshard <- t.xshard + 1)
      sorted

let run_sharded ?until t =
  let count = ref 0 in
  let continue_ = ref true in
  (* Merged prologue: one global time-ordered loop over all shard heaps.
     Zero-latency cross-shard couplings (the init syncpoint) are legal
     here; [shard_engage] switches to epoch rounds once initialisation
     has completed and only lookahead-bounded couplings remain. *)
  while !continue_ && not (t.engaged || t.engage_req) do
    let i, key = min_shard t in
    if i < 0 then continue_ := false
    else begin
      match until with
      | Some limit when key > limit ->
        t.now <- limit;
        continue_ := false
      | _ ->
        let sh = t.shards.(i) in
        t.now <- key;
        sh.sh_now <- key;
        t.processed <- t.processed + 1;
        sh.sh_processed <- sh.sh_processed + 1;
        incr count;
        t.exec <- Some sh;
        exec_event t (Heap.pop sh.sh_queue);
        t.exec <- None
    end
  done;
  if !continue_ && t.engage_req then begin
    if not t.engaged then begin
      t.engaged <- true;
      Array.iter (fun sh -> sh.sh_now <- t.now) t.shards
    end;
    let epoch_base = ref t.now in
    while !continue_ do
      let eend = !epoch_base +. t.lookahead in
      t.epoch_end <- eend;
      Array.iter
        (fun sh ->
          t.exec <- Some sh;
          t.now <- sh.sh_now;
          let go = ref true in
          while !go do
            if Heap.is_empty sh.sh_queue then go := false
            else begin
              let k = Heap.top_key sh.sh_queue in
              if
                k >= eend
                || (match until with Some u -> k > u | None -> false)
              then go := false
              else begin
                t.now <- k;
                sh.sh_now <- k;
                t.processed <- t.processed + 1;
                sh.sh_processed <- sh.sh_processed + 1;
                incr count;
                exec_event t (Heap.pop sh.sh_queue)
              end
            end
          done)
        t.shards;
      t.exec <- None;
      t.barrier_rounds <- t.barrier_rounds + 1;
      merge_pending t;
      let _, mk = min_shard t in
      match until with
      | Some limit when mk > limit ->
        t.now <- limit;
        continue_ := false
      | _ ->
        if mk = infinity then begin
          continue_ := false;
          t.now <-
            Array.fold_left (fun a sh -> Float.max a sh.sh_now) t.now t.shards
        end
        else begin
          (* Skip empty epochs: jump the next round to the first due
             event.  Partition choice only — event times are untouched. *)
          if mk > eend then
            t.epochs_elided <-
              t.epochs_elided + int_of_float ((mk -. eend) /. t.lookahead);
          epoch_base := Float.max eend mk
        end
    done
  end;
  !count

let run ?until t =
  if Array.length t.shards = 0 then run_unsharded ?until t
  else run_sharded ?until t

let events_processed t = t.processed

let note_elided t n = if n > 0 then t.elided <- t.elided + n

let events_elided t = t.elided

let peak_heap_depth t =
  Array.fold_left (fun a sh -> max a sh.sh_peak) t.peak_heap t.shards

let cells_reused t =
  Array.fold_left (fun a sh -> a + sh.sh_reused) t.reused t.shards

let shard_count t = Array.length t.shards

(* Shard id an event issued right now would land on by default; 0 when
   sharding is off.  Lets per-shard caches (e.g. Route.Memo tables) pick
   their slot without threading ids through every call chain. *)
let exec_shard t =
  match t.exec with
  | Some sh -> sh.sh_id
  | None -> (match t.ambient with Some sh -> sh.sh_id | None -> 0)

let shard_events t = Array.map (fun sh -> sh.sh_processed) t.shards

let barrier_rounds t = t.barrier_rounds

let epochs_elided t = t.epochs_elided

let xshard_events t = t.xshard

let set_label t l = t.label <- l

let label t = t.label

let span_begin t ~cat ~name =
  let sp =
    { sp_cat = cat; sp_name = name;
      sp_track = (match t.current with Some n -> n | None -> "<callback>");
      sp_begin = t.now; sp_end = Float.nan; sp_args = [] }
  in
  t.spans <- sp :: t.spans;
  sp

let span_end t ?(args = []) sp =
  if Float.is_nan sp.sp_end then begin
    sp.sp_end <- t.now;
    sp.sp_args <- args
  end

let take_spans t =
  let still_open, ended =
    List.partition (fun sp -> Float.is_nan sp.sp_end) t.spans
  in
  t.dropped_spans <- t.dropped_spans + List.length still_open;
  t.spans <- [];
  List.rev ended

let take_dropped_spans t =
  let n = t.dropped_spans in
  t.dropped_spans <- 0;
  n

let ledger_begin t ~op =
  { ld_op = op;
    ld_track = (match t.current with Some n -> n | None -> "<callback>");
    ld_begin = t.now; ld_cursor = t.now; ld_end = Float.nan;
    ld_phases = []; ld_total = 0. }

(* Attribute the segment [cursor, now] to [phase] and advance the cursor.
   Zero-length segments are skipped, so an unconditional mark on a path
   that may not have consumed time (e.g. an SDMA halt wait) records
   nothing unless it did.  Time within one process is monotone, so after
   a non-skipped mark the cursor always equals the current time. *)
let ledger_mark t ld ~phase =
  if Float.is_nan ld.ld_end && t.now > ld.ld_cursor then begin
    ld.ld_phases <- (phase, ld.ld_cursor, t.now) :: ld.ld_phases;
    ld.ld_total <- ld.ld_total +. (t.now -. ld.ld_cursor);
    ld.ld_cursor <- t.now
  end

let ledger_close t ld ~phase =
  if Float.is_nan ld.ld_end then begin
    ledger_mark t ld ~phase;
    ld.ld_end <- t.now;
    t.ledgers <- ld :: t.ledgers
  end

let take_ledgers t =
  let closed = t.ledgers in
  t.ledgers <- [];
  List.rev closed

let step_note t ~series delta =
  t.steps <- (series, t.now, delta) :: t.steps

let take_steps t =
  let steps = t.steps in
  t.steps <- [];
  List.rev steps

let ns x = x

let us x = x *. 1e3

let ms x = x *. 1e6

let s x = x *. 1e9

(** PSM rendezvous control messages, carried as fabric control packets. *)

open Psm_import

type Wire.ctrl +=
  | Rts of {
      tag : int64;
      msg_id : int;
      msg_len : int;
      src_rank : int;
    }
      (** request-to-send: announces a large message *)
  | Cts of {
      msg_id : int;
      offset : int;       (** window offset within the message *)
      win_len : int;
      tid_base : int;     (** -1: receiver could not register; send eager *)
      dst_rank : int;     (** rank that issued the CTS *)
    }
      (** clear-to-send: one window is registered and may be SDMA'd *)

(** Size on the wire of a control message. *)
val ctrl_bytes : int

val describe : Wire.ctrl -> string

type owner = Linux | Lwk | Offline

type t = {
  id : int;
  core_id : int;
  thread_id : int;
  numa_id : int;
  mutable owner : owner;
}

let make_topology ~cores ~threads_per_core ~numa_domains =
  if cores <= 0 || threads_per_core <= 0 || numa_domains <= 0 then
    invalid_arg "Cpu.make_topology: all parameters must be > 0";
  Array.init (cores * threads_per_core) (fun id ->
      let core_id = id / threads_per_core in
      let thread_id = id mod threads_per_core in
      { id; core_id; thread_id; numa_id = core_id mod numa_domains;
        owner = Linux })

let knl_7250 ?(numa_domains = 4) () =
  make_topology ~cores:68 ~threads_per_core:4 ~numa_domains

let count_owned cpus owner =
  Array.fold_left (fun acc c -> if c.owner = owner then acc + 1 else acc) 0 cpus

let owned cpus owner =
  Array.to_list cpus |> List.filter (fun c -> c.owner = owner)

let owner_to_string = function
  | Linux -> "Linux"
  | Lwk -> "LWK"
  | Offline -> "offline"

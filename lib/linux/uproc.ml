open Linux_import

type t = {
  pid : int;
  node : Node.t;
  pt : Pagetable.t;
  mutable mmap_cursor : Addr.t;
  mutable rotor : int;
  mappings : (Addr.t, int * int) Hashtbl.t;
}

let mmap_base = 0x7f00_0000_0000

let create ~node ~pid =
  { pid; node; pt = Pagetable.create (); mmap_cursor = mmap_base;
    rotor = pid; mappings = Hashtbl.create 64 }

let caller t : Vfs.caller = { pid = t.pid; pt = t.pt }

(* Allocate one 4 kB frame, rotating the preferred NUMA domain so that
   consecutive pages rarely sit next to each other physically.  The rotor
   is per-process (seeded from the pid) rather than a global: simulated
   worlds must not share mutable state, or parallel experiment sweeps
   would lose their run-to-run determinism. *)
let alloc_frame t =
  let doms = Numa.domains_of_kind t.node.Node.numa Numa.Ddr4 in
  let doms = if doms = [] then Numa.domains t.node.Node.numa else doms in
  let n = List.length doms in
  let start = t.rotor in
  t.rotor <- t.rotor + 1;
  let rec try_from i =
    if i >= n then None
    else begin
      let d = List.nth doms ((start + i) mod n) in
      match Physmem.alloc d.Numa.mem 1 with
      | Some pa -> Some pa
      | None -> try_from (i + 1)
    end
  in
  match try_from 0 with
  | Some pa -> pa
  | None ->
    (match Node.alloc_frames t.node ~pref:Numa.Mcdram 1 with
     | Some pa -> pa
     | None -> raise Out_of_memory)

let mmap_anon t len =
  if len <= 0 then invalid_arg "Uproc.mmap_anon: len must be > 0";
  let len = Addr.align_up len Addr.page_size in
  let va = t.mmap_cursor in
  t.mmap_cursor <- va + len + Addr.page_size (* guard page *);
  let n = len / Addr.page_size in
  for i = 0 to n - 1 do
    let pa = alloc_frame t in
    Pagetable.map t.pt
      ~va:(va + (i * Addr.page_size))
      ~pa ~page_size:Addr.page_size
      ~flags:Pagetable.Flags.(present + writable + user)
  done;
  Hashtbl.add t.mappings va (n, Addr.page_size);
  va

let munmap t va =
  match Hashtbl.find_opt t.mappings va with
  | None -> invalid_arg "Uproc.munmap: unknown mapping"
  | Some (n, page_size) ->
    for i = 0 to n - 1 do
      let m = Pagetable.unmap t.pt ~va:(va + (i * page_size)) in
      Node.free_frames t.node m.Pagetable.pa (page_size / Addr.page_size)
    done;
    Hashtbl.remove t.mappings va

let write t va data =
  let segs =
    Pagetable.phys_segments t.pt ~va ~len:(Bytes.length data)
  in
  let off = ref 0 in
  List.iter
    (fun (pa, len, _flags) ->
      Node.write_bytes t.node pa (Bytes.sub data !off len);
      off := !off + len)
    segs

let read t va len =
  let segs = Pagetable.phys_segments t.pt ~va ~len in
  let out = Bytes.create len in
  let off = ref 0 in
  List.iter
    (fun (pa, seg_len, _flags) ->
      Bytes.blit (Node.read_bytes t.node pa seg_len) 0 out !off seg_len;
      off := !off + seg_len)
    segs;
  out

let live_mappings t = Hashtbl.length t.mappings

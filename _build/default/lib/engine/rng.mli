(** Deterministic, splittable pseudo-random number generator
    (xoshiro256** seeded via splitmix64).

    Every stochastic component of the simulation owns its own stream derived
    from the experiment seed, so results are reproducible regardless of
    module evaluation order. *)

type t

val create : seed:int64 -> t

(** [split t] derives an independent stream; [t] advances. *)
val split : t -> t

(** Uniform in [\[0, 1)]. *)
val float : t -> float

(** Uniform in [\[0, bound)]; [bound > 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponential with the given [mean]. *)
val exponential : t -> mean:float -> float

(** Normal via Box–Muller. *)
val normal : t -> mean:float -> stddev:float -> float

(** Raw next 64-bit value. *)
val bits64 : t -> int64

lib/engine/sim.ml: Effect Float Heap

lib/ihk/delegator.ml: Costs Ihk_import Lkernel Pico_engine Resource Sim Uproc

type t = {
  mutable link_bandwidth : float;
  mutable link_latency : float;
  mutable loopback_latency : float;
  mutable switch_latency : float;
  mutable sdma_request_overhead : float;
  mutable packet_overhead_bytes : int;
  mutable sdma_max_request : int;
  mutable sdma_engines : int;
  mutable pio_packet_size : int;
  mutable pio_cpu_bandwidth : float;
  mutable pio_packet_overhead : float;
  mutable mmio_write : float;
  mutable irq_dispatch : float;
  mutable linux_syscall : float;
  mutable lwk_syscall : float;
  mutable gup_per_page : float;
  mutable ptwalk_per_page : float;
  mutable kmalloc : float;
  mutable kfree : float;
  mutable kfree_remote : float;
  mutable spinlock_uncontended : float;
  mutable memcpy_bandwidth : float;
  mutable ikc_message : float;
  mutable proxy_dispatch : float;
  mutable proxy_oversub_penalty : float;
  mutable offload_linux_cpu_work : float;
  mutable noise_interval : float;
  mutable noise_duration : float;
  mutable nohz_full_factor : float;
  mutable mpi_init_base : float;
  mutable mpi_init_per_round : float;
  mutable pico_init : float;
  mutable fault_sdma_halt_interval : float;
  mutable fault_sdma_recovery : float;
  mutable fault_sdma_restart : float;
  mutable fault_ikc_drop : float;
  mutable fault_wire_crc : float;
  mutable fault_service_stall_interval : float;
  mutable fault_service_stall_duration : float;
  mutable fault_horizon : float;
  mutable fault_link_down_interval : float;
  mutable fault_link_down_duration : float;
  mutable fault_link_derate_interval : float;
  mutable fault_link_derate_duration : float;
  mutable fault_link_derate_factor : float;
  mutable fault_link_corrupt : float;
  mutable ikc_timeout : float;
  mutable ikc_retry_backoff : float;
  mutable ikc_max_retries : int;
  mutable fabric_retry_backoff : float;
  mutable fabric_max_retries : int;
  mutable serve_horizon : float;
  mutable serve_arrival_interval : float;
  mutable serve_burst_interval : float;
  mutable serve_burst_duration : float;
  mutable serve_burst_factor : float;
  mutable serve_req_bytes : int;
  mutable serve_resp_min : int;
  mutable serve_resp_max : int;
  mutable serve_resp_alpha : float;
  mutable serve_fanout : int;
  mutable serve_workers : int;
  mutable serve_service_base : float;
  mutable serve_service_per_byte : float;
  mutable serve_admit_cap : int;
  mutable serve_breaker_threshold : int;
  mutable serve_breaker_backoff : float;
  mutable serve_timeout : float;
}

let defaults () = {
  (* OmniPath: 100 Gb/s = 12.5 GB/s, ~1 us end-to-end latency. *)
  link_bandwidth = 12.5;
  link_latency = 1_000.;
  (* Same-node delivery never touches the wire. *)
  loopback_latency = 200.;
  (* Per-hop switch traversal when a fat-tree topology is configured; the
     default flat fabric charges link_latency only, so this value is
     never read there. *)
  switch_latency = 150.;
  (* SDMA engine: per-descriptor fetch/fill/doorbell cost.  With 4 kB
     descriptors this caps a single stream around 9.3 GB/s; with 10 kB
     descriptors around 10.9 GB/s — the Fig. 4 gap. *)
  sdma_request_overhead = 30.;
  packet_overhead_bytes = 800;
  sdma_max_request = 10_240;
  sdma_engines = 16;
  (* PIO: 8 kB packets, CPU-driven store to device (KNL cores are slow). *)
  pio_packet_size = 8_192;
  pio_cpu_bandwidth = 5.0;
  pio_packet_overhead = 250.;
  mmio_write = 120.;
  irq_dispatch = 500.;
  (* KNL in-order Atom-class cores: syscalls are not cheap. *)
  linux_syscall = 700.;
  lwk_syscall = 250.;
  gup_per_page = 40.;
  ptwalk_per_page = 60.;
  kmalloc = 150.;
  kfree = 120.;
  kfree_remote = 260.;
  spinlock_uncontended = 40.;
  memcpy_bandwidth = 6.0;
  (* IKC: cache-line ping across kernels + IPI. *)
  ikc_message = 1_200.;
  proxy_dispatch = 6_000.;
  proxy_oversub_penalty = 10_000.;
  offload_linux_cpu_work = 800.;
  (* Residual daemon/timer activity every ~1 ms costing ~25 us on stock
     Linux cores; nohz_full removes ~85 % of it on application cores. *)
  noise_interval = 1.0e6;
  noise_duration = 2.5e4;
  nohz_full_factor = 0.15;
  (* MPI library bootstrap (PMI exchange, PSM endpoint setup): base plus
     a per-log2(world) wire component, charged in MPI_Init on every OS. *)
  mpi_init_base = 1.5e6;
  mpi_init_per_round = 2.0e4;
  (* One-time PicoDriver initialisation: DWARF mapping setup, kernel VA
     unification bookkeeping (paper: visible in MPI_Init). *)
  pico_init = 5.0e6;
  (* Fault injection: every rate is off by default — the sunny-day model
     is byte-identical to the pre-fault tree.  Intervals are mean gaps of
     an exponential inter-arrival process; the schedule is drawn from the
     experiment seed up to fault_horizon ns of simulated time. *)
  fault_sdma_halt_interval = 0.;
  (* Engine dwell halted (firmware dump + hardware clean-up) before the
     host driver may restart it, and the restart walk itself. *)
  fault_sdma_recovery = 2.0e6;
  fault_sdma_restart = 5.0e4;
  fault_ikc_drop = 0.;
  fault_wire_crc = 0.;
  fault_service_stall_interval = 0.;
  fault_service_stall_duration = 5.0e5;
  fault_horizon = 0.;
  (* Fabric fault domain: link down/up windows, bandwidth-derate windows
     and per-link corrupt-and-replay, all drawn from the experiment seed
     up to fault_horizon (DESIGN.md section 15).  Rates off by default —
     the immortal fabric is byte-identical to the pre-fault tree. *)
  fault_link_down_interval = 0.;
  fault_link_down_duration = 1.0e6;
  fault_link_derate_interval = 0.;
  fault_link_derate_duration = 4.0e6;
  (* Remaining bandwidth fraction inside a derate window; must stay in
     (0, 1] so a derate only ever slows a link (sharding pair bounds are
     derived from the undegraded wire time and must never be tightened). *)
  fault_link_derate_factor = 0.5;
  fault_link_corrupt = 0.;
  (* IKC robustness: requester-side timeout on the offload round trip,
     linear backoff per retry, bounded attempts.  Only exercised when a
     drop fault is installed — the legacy no-fault path never arms them. *)
  ikc_timeout = 5.0e4;
  ikc_retry_backoff = 2.5e4;
  ikc_max_retries = 5;
  (* Transport-level recovery from a partitioned fabric: PSM sends poll
     the route with linear backoff, then count the flow degraded (the
     packet parks at egress until a link returns) rather than hang. *)
  fabric_retry_backoff = 5.0e4;
  fabric_max_retries = 5;
  (* Service workload (picobench serve, DESIGN.md section 16): an
     open-loop sharded RPC scenario.  Off by default — with horizon or
     interval at 0 the arrival plan is empty, no serve RNG split is
     taken, and no serve process ever spawns, so every legacy figure is
     byte-identical to the pre-serve tree. *)
  serve_horizon = 0.;
  serve_arrival_interval = 0.;
  (* Burst episodes: exponential gaps between windows of [duration] ns
     during which the arrival rate is multiplied by [factor]. *)
  serve_burst_interval = 0.;
  serve_burst_duration = 2.0e5;
  serve_burst_factor = 4.0;
  (* Request/response sizes: requests exponential around the mean,
     responses bounded-Pareto (heavy tail is what rendezvous replies —
     and thus the OS fast-path crossing — land on). *)
  serve_req_bytes = 512;
  serve_resp_min = 4_096;
  serve_resp_max = 1_048_576;
  serve_resp_alpha = 1.3;
  (* Fan out each client request to this many consecutive shard
     replicas and wait for the slowest (incast). *)
  serve_fanout = 3;
  serve_workers = 2;
  serve_service_base = 2.5e3;
  serve_service_per_byte = 0.05;
  (* Admission control and circuit breaker: 0 disables (legacy).  The
     cap bounds queued+inflight requests per server; over it the server
     sheds with an eager reject reply.  The breaker opens after
     [threshold] consecutive client-side failures and half-open probes
     with linear backoff per consecutive trip. *)
  serve_admit_cap = 0;
  serve_breaker_threshold = 0;
  serve_breaker_backoff = 3.0e5;
  serve_timeout = 0.;
}

(* One table per domain: parallel sweeps (harness pool workers) each get
   their own copy, so [with_patched]/ablation mutations in one domain can
   never leak into experiments running in another.  A fresh domain starts
   from the calibrated defaults; the harness pool overrides that by
   [restore]-ing a snapshot of the submitting domain's table into the
   worker before each job. *)
let dls_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> defaults ())

let current () = Domain.DLS.get dls_key

let copy src = { src with link_bandwidth = src.link_bandwidth }

let snapshot () = copy (current ())

let assign dst src =
  dst.link_bandwidth <- src.link_bandwidth;
  dst.link_latency <- src.link_latency;
  dst.loopback_latency <- src.loopback_latency;
  dst.switch_latency <- src.switch_latency;
  dst.sdma_request_overhead <- src.sdma_request_overhead;
  dst.packet_overhead_bytes <- src.packet_overhead_bytes;
  dst.sdma_max_request <- src.sdma_max_request;
  dst.sdma_engines <- src.sdma_engines;
  dst.pio_packet_size <- src.pio_packet_size;
  dst.pio_cpu_bandwidth <- src.pio_cpu_bandwidth;
  dst.pio_packet_overhead <- src.pio_packet_overhead;
  dst.mmio_write <- src.mmio_write;
  dst.irq_dispatch <- src.irq_dispatch;
  dst.linux_syscall <- src.linux_syscall;
  dst.lwk_syscall <- src.lwk_syscall;
  dst.gup_per_page <- src.gup_per_page;
  dst.ptwalk_per_page <- src.ptwalk_per_page;
  dst.kmalloc <- src.kmalloc;
  dst.kfree <- src.kfree;
  dst.kfree_remote <- src.kfree_remote;
  dst.spinlock_uncontended <- src.spinlock_uncontended;
  dst.memcpy_bandwidth <- src.memcpy_bandwidth;
  dst.ikc_message <- src.ikc_message;
  dst.proxy_dispatch <- src.proxy_dispatch;
  dst.proxy_oversub_penalty <- src.proxy_oversub_penalty;
  dst.offload_linux_cpu_work <- src.offload_linux_cpu_work;
  dst.noise_interval <- src.noise_interval;
  dst.noise_duration <- src.noise_duration;
  dst.nohz_full_factor <- src.nohz_full_factor;
  dst.mpi_init_base <- src.mpi_init_base;
  dst.mpi_init_per_round <- src.mpi_init_per_round;
  dst.pico_init <- src.pico_init;
  dst.fault_sdma_halt_interval <- src.fault_sdma_halt_interval;
  dst.fault_sdma_recovery <- src.fault_sdma_recovery;
  dst.fault_sdma_restart <- src.fault_sdma_restart;
  dst.fault_ikc_drop <- src.fault_ikc_drop;
  dst.fault_wire_crc <- src.fault_wire_crc;
  dst.fault_service_stall_interval <- src.fault_service_stall_interval;
  dst.fault_service_stall_duration <- src.fault_service_stall_duration;
  dst.fault_horizon <- src.fault_horizon;
  dst.fault_link_down_interval <- src.fault_link_down_interval;
  dst.fault_link_down_duration <- src.fault_link_down_duration;
  dst.fault_link_derate_interval <- src.fault_link_derate_interval;
  dst.fault_link_derate_duration <- src.fault_link_derate_duration;
  dst.fault_link_derate_factor <- src.fault_link_derate_factor;
  dst.fault_link_corrupt <- src.fault_link_corrupt;
  dst.ikc_timeout <- src.ikc_timeout;
  dst.ikc_retry_backoff <- src.ikc_retry_backoff;
  dst.ikc_max_retries <- src.ikc_max_retries;
  dst.fabric_retry_backoff <- src.fabric_retry_backoff;
  dst.fabric_max_retries <- src.fabric_max_retries;
  dst.serve_horizon <- src.serve_horizon;
  dst.serve_arrival_interval <- src.serve_arrival_interval;
  dst.serve_burst_interval <- src.serve_burst_interval;
  dst.serve_burst_duration <- src.serve_burst_duration;
  dst.serve_burst_factor <- src.serve_burst_factor;
  dst.serve_req_bytes <- src.serve_req_bytes;
  dst.serve_resp_min <- src.serve_resp_min;
  dst.serve_resp_max <- src.serve_resp_max;
  dst.serve_resp_alpha <- src.serve_resp_alpha;
  dst.serve_fanout <- src.serve_fanout;
  dst.serve_workers <- src.serve_workers;
  dst.serve_service_base <- src.serve_service_base;
  dst.serve_service_per_byte <- src.serve_service_per_byte;
  dst.serve_admit_cap <- src.serve_admit_cap;
  dst.serve_breaker_threshold <- src.serve_breaker_threshold;
  dst.serve_breaker_backoff <- src.serve_breaker_backoff;
  dst.serve_timeout <- src.serve_timeout

let restore src = assign (current ()) src

let reset () = assign (current ()) (defaults ())

let with_patched patch f =
  let cur = current () in
  let saved = copy cur in
  patch cur;
  match f () with
  | v -> assign cur saved; v
  | exception e -> assign cur saved; raise e

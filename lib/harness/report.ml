let mutex = Mutex.create ()

let metrics : (string, float) Hashtbl.t = Hashtbl.create 256

let with_lock f =
  Mutex.lock mutex;
  match f () with
  | v -> Mutex.unlock mutex; v
  | exception e -> Mutex.unlock mutex; raise e

let record ~figure ~metric v =
  with_lock (fun () -> Hashtbl.replace metrics (figure ^ "/" ^ metric) v)

let clear () = with_lock (fun () -> Hashtbl.reset metrics)

let size () = with_lock (fun () -> Hashtbl.length metrics)

let dump () =
  with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) metrics [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_lit v =
  if Float.is_finite v then Printf.sprintf "%.12g" v else "null"

let to_json ?(extra = []) () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"picodriver-bench-v1\"";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\n  \"%s\": \"%s\"" (escape k) (escape v)))
    extra;
  Buffer.add_string b ",\n  \"metrics\": {";
  let entries = dump () in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    \"%s\": %s" (escape k) (float_lit v)))
    entries;
  if entries <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let write ?extra path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?extra ()))

(** UMT2013 skeleton: deterministic (Sn) radiation transport, weak
    scaling.

    Communication profile: wavefront sweeps — per step, several angular
    sweep phases each exchanging {e large} (rendezvous-sized) boundary
    fluxes with the six spatial neighbours, with downstream ranks waiting
    on upstream data.  Every exchange drives the HFI driver (TID
    registration on the receiver, SDMA writev on the sender), so the
    offloading penalty compounds along the dependency chain: the paper
    measures the original McKernel below 20 % of Linux beyond 4 nodes
    (Fig. 6a). *)

open Apps_import

type params = {
  steps : int;
  sweep_phases : int;       (** angle octant batches per step *)
  angle_groups : int;       (** flux exchanges per phase per neighbour *)
  compute_ns : float;       (** per-phase local work *)
  flux_bytes : int;         (** boundary flux per neighbour per exchange *)
}

val default : params

val run : ?params:params -> Comm.t -> float

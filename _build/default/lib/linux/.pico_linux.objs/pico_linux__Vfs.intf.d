lib/linux/vfs.mli: Addr Linux_import Pagetable Sim

lib/apps/umt.mli: Apps_import Comm

lib/linux/noise.mli: Linux_import Rng Sim

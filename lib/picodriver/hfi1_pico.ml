open Pd_import

type accessors = {
  filedata : Struct_access.t;
  ctxtdata : Struct_access.t;
  devdata : Struct_access.t;
  sdma_state : Struct_access.t;
}

type t = {
  mck : Mck.t;
  linux_driver : Hfi1_driver.t;
  acc : accessors;
  (* The numeric value of sdma_states::sdma_state_s99_running, recovered
     from the module binary's DW_TAG_enumerator entries. *)
  s99_running : int32;
  (* devdata.num_sdma, read through DWARF extraction at attach time: the
     engine-selector modulus, like the Linux driver's own. *)
  num_sdma : int;
  mutable install : Framework.installed option;
  sdma_state_header : string;
  mutable writev_fallback : int;
  mutable writev_fast : int;
  mutable ioctl_fast : int;
  mutable big_requests : int;
  mutable pt_segments : int;
}

let installed t =
  match t.install with
  | Some i -> i
  | None -> invalid_arg "Hfi1_pico: not installed"

let sdma_state_header t = t.sdma_state_header

let writev_fast t = t.writev_fast

let writev_fallback t = t.writev_fallback

let ioctl_fast t = t.ioctl_fast

let big_requests t = t.big_requests

let pt_segments t = t.pt_segments

let ported_ops _ = [ "writev"; "ioctl:TID_UPDATE"; "ioctl:TID_FREE" ]

(* --- context discovery through DWARF-extracted offsets ----------------- *)

let context_of_file t (file : Vfs.file) =
  let node = Mck.node t.mck in
  let vs = Mck.vspace t.mck in
  if file.Vfs.private_data = 0 then None
  else begin
    let fd_va = file.Vfs.private_data in
    let uctxt_va =
      Struct_access.read_ptr t.acc.filedata ~node ~vs ~base_va:fd_va "uctxt"
    in
    if uctxt_va = 0 then None
    else begin
      let ctxt_id =
        Int32.to_int
          (Struct_access.read_u32 t.acc.ctxtdata ~node ~vs ~base_va:uctxt_va
             "ctxt")
      in
      Hfi.context (Hfi1_driver.hfi t.linux_driver) ctxt_id
    end
  end

let engine_running t ~engine_idx =
  (* Consult the Linux driver's sdma_state for this engine — the Listing 1
     fields — before submitting.  The expected value of [current_state]
     comes from the binary's own enumerators, not from any header. *)
  let node = Mck.node t.mck in
  let vs = Mck.vspace t.mck in
  let per_sdma = Hfi1_driver.per_sdma_va t.linux_driver in
  let engine_size = Hfi1_structs.struct_size Hfi1_structs.sdma_engine in
  let state_off = Hfi1_structs.field_offset Hfi1_structs.sdma_engine "state" in
  let base_va = per_sdma + (engine_idx * engine_size) + state_off in
  let current =
    Struct_access.read_u32 t.acc.sdma_state ~node ~vs ~base_va "current_state"
  in
  let go =
    Struct_access.read_u32 t.acc.sdma_state ~node ~vs ~base_va
      "go_s99_running"
  in
  current = t.s99_running && go = 1l

(* --- fast-path SDMA send ----------------------------------------------- *)

(* Chop physically contiguous segments at the hardware maximum.  Unlike
   the Linux driver, a request may span page boundaries and large pages. *)
let requests_of_segments t segs =
  let maxreq = (Costs.current ()).sdma_max_request in
  List.concat_map
    (fun (pa, len, flags) ->
      if not (Pagetable.Flags.has flags Pagetable.Flags.pinned) then
        invalid_arg
          "hfi1-pico: SDMA from non-pinned mapping (LWK policy violated)";
      let rec chop off acc =
        if off >= len then List.rev acc
        else begin
          let take = min maxreq (len - off) in
          if take > Addr.page_size then t.big_requests <- t.big_requests + 1;
          chop (off + take) ({ Sdma.pa = pa + off; len = take } :: acc)
        end
      in
      chop 0 [])
    segs

let walk_cost segs =
  (* One table walk per leaf entry visited: with 2 MB pages this is
     hundreds of times cheaper than per-4 kB-page get_user_pages. *)
  float_of_int (List.length segs) *. (Costs.current ()).ptwalk_per_page

let fast_writev t (p : Mck.pctx) (file : Vfs.file) (iovs : Vfs.iovec list) =
  t.writev_fast <- t.writev_fast + 1;
  match iovs with
  | [] -> 0
  | hdr_iov :: data_iovs ->
    let sim = Mck.sim t.mck in
    let hdr_bytes =
      Proc.read p.Mck.proc hdr_iov.Vfs.iov_base hdr_iov.Vfs.iov_len
    in
    let req = User_api.decode_sdma_req hdr_bytes in
    let src_ctx =
      match context_of_file t file with
      | Some c -> Hfi.ctx_id c
      | None ->
        invalid_arg "hfi1-pico: writev on file without open context"
    in
    (* This flow's engine (same per-flow selector as submission).  If the
       Linux driver has walked it out of s99_running — observed purely
       through the DWARF-extracted sdma_state fields — degrade to the
       syscall-offload slow path; the check is per submit, so the fast
       path resumes by itself once recovery restores the state. *)
    if not (engine_running t ~engine_idx:(src_ctx mod t.num_sdma)) then begin
      (* Not served locally after all: keep writev_fast = calls served. *)
      t.writev_fast <- t.writev_fast - 1;
      t.writev_fallback <- t.writev_fallback + 1;
      raise Mck.Fastpath_unavailable
    end;
    (* Fast-path analogue of the Linux-side gup/get_user_pages ledger:
       the PicoDriver translates through the page table itself. *)
    let lg = Ledger.begin_ sim ~op:"translate/pt_walk" in
    let all_reqs, total =
      List.fold_left
        (fun (acc, total) (iov : Vfs.iovec) ->
          let segs =
            Pagetable.phys_segments p.Mck.proc.Proc.pt ~va:iov.Vfs.iov_base
              ~len:iov.Vfs.iov_len
          in
          t.pt_segments <- t.pt_segments + List.length segs;
          Sim.delay sim (walk_cost segs);
          (acc @ requests_of_segments t segs, total + iov.Vfs.iov_len))
        ([], 0) data_iovs
    in
    Ledger.close sim lg ~phase:"walk";
    if all_reqs = [] then 0
    else begin
      (* Metadata from McKernel's per-core allocator; the duplicated
         callback frees it with the remote-safe kfree since SDMA
         completions run on Linux CPUs. *)
      let mem = Mck.mem t.mck in
      let core = p.Mck.thread.Pico_mck.Sched.core in
      let meta = Mem.kalloc mem ~core 128 in
      let inst = installed t in
      let cb_ptr =
        Callbacks.register ~once:true inst.Framework.callbacks
          ~name:"pico-sdma-complete"
          (fun () -> Mem.kfree_remote mem meta)
      in
      let on_complete () =
        Sim.delay sim 200.;
        Callbacks.invoke inst.Framework.callbacks ~from_linux:true cb_ptr
      in
      let hdr = User_api.wire_header_of_req req ~frag_len:total in
      (* Same lock as the Linux driver: correct cross-kernel mutual
         exclusion on the engine rings. *)
      Spinlock.with_lock (Hfi1_driver.sdma_lock t.linux_driver) (fun () ->
          Hfi.sdma_submit
            (Hfi1_driver.hfi t.linux_driver)
            ~channel:src_ctx ~dst_node:req.User_api.dst_node
            ~dst_ctx:req.User_api.dst_ctx ~hdr
            ~reqs:all_reqs ~on_complete ());
      total
    end

(* --- fast-path expected-receive registration --------------------------- *)

(* One RcvArray entry per contiguous physical run (up to 2 MB), instead of
   one per 4 kB page. *)
let entry_max = Addr.large_page_size

let entries_of_segments segs =
  List.concat_map
    (fun (pa, len, _flags) ->
      let rec chop off acc =
        if off >= len then List.rev acc
        else begin
          let take = min entry_max (len - off) in
          chop (off + take) ({ Rcvarray.pa = pa + off; len = take } :: acc)
        end
      in
      chop 0 [])
    segs

let fast_tid_update t (p : Mck.pctx) (file : Vfs.file) ~arg =
  t.ioctl_fast <- t.ioctl_fast + 1;
  let sim = Mck.sim t.mck in
  let arg_bytes = Proc.read p.Mck.proc arg User_api.tid_update_bytes in
  let tu = User_api.decode_tid_update arg_bytes in
  let ctx =
    match context_of_file t file with
    | Some c -> c
    | None -> invalid_arg "hfi1-pico: TID_UPDATE without open context"
  in
  let segs =
    Pagetable.phys_segments p.Mck.proc.Proc.pt ~va:tu.User_api.tu_va
      ~len:tu.User_api.tu_len
  in
  t.pt_segments <- t.pt_segments + List.length segs;
  let lg = Ledger.begin_ sim ~op:"translate/pt_walk" in
  Sim.delay sim (walk_cost segs);
  Ledger.close sim lg ~phase:"walk";
  let entries = entries_of_segments segs in
  Spinlock.with_lock (Hfi1_driver.tid_lock t.linux_driver) (fun () ->
      match Rcvarray.program (Hfi.rcvarray ctx) entries with
      | Some tid_base -> tid_base lor (List.length entries lsl 16)
      | None -> -1)

let fast_tid_free t (p : Mck.pctx) (file : Vfs.file) ~arg =
  t.ioctl_fast <- t.ioctl_fast + 1;
  let arg_bytes = Proc.read p.Mck.proc arg User_api.tid_free_bytes in
  let tf = User_api.decode_tid_free arg_bytes in
  let ctx =
    match context_of_file t file with
    | Some c -> c
    | None -> invalid_arg "hfi1-pico: TID_FREE without open context"
  in
  Spinlock.with_lock (Hfi1_driver.tid_lock t.linux_driver) (fun () ->
      Rcvarray.unprogram (Hfi.rcvarray ctx) ~tid_base:tf.User_api.tf_tid_base
        ~count:tf.User_api.tf_count;
      (* If this run was registered by the Linux driver, release its
         pins. *)
      (match
         Hfi1_driver.take_tid_pins t.linux_driver
           ~tid_base:tf.User_api.tf_tid_base
       with
       | Some (_count, pins) ->
         Pico_linux.Gup.put_pages (Hfi1_driver.gup t.linux_driver) pins
       | None -> ());
      0)

(* --- attach ------------------------------------------------------------ *)

let load_accessors sections =
  let ( let* ) = Result.bind in
  let* filedata =
    Struct_access.load sections ~struct_name:"hfi1_filedata"
      ~fields:[ "dd"; "uctxt" ]
  in
  let* ctxtdata =
    Struct_access.load sections ~struct_name:"hfi1_ctxtdata"
      ~fields:[ "ctxt"; "dd" ]
  in
  let* devdata =
    Struct_access.load sections ~struct_name:"hfi1_devdata"
      ~fields:[ "unit"; "num_sdma"; "per_sdma" ]
  in
  let* sdma_state =
    Struct_access.load sections ~struct_name:"sdma_state"
      ~fields:[ "current_state"; "go_s99_running"; "previous_state" ]
  in
  Ok { filedata; ctxtdata; devdata; sdma_state }

let attach mck ~linux_driver ~module_sections =
  match load_accessors module_sections with
  | Error e -> Error ("hfi1-pico: DWARF extraction failed: " ^ e)
  | Ok acc ->
    let s99_running =
      Extract.enum_value (Encode.parse module_sections) ~enum:"sdma_states"
        ~enumerator:"sdma_state_s99_running"
    in
    (* Sanity: the devdata we will dereference matches this device. *)
    let node = Mck.node mck in
    let vs = Mck.vspace mck in
    (try Unified_vspace.require vs with
     | Unified_vspace.Layout_unsuitable _ as e -> raise e);
    let unit_no =
      Int32.to_int
        (Struct_access.read_u32 acc.devdata ~node ~vs
           ~base_va:(Hfi1_driver.devdata_va linux_driver) "unit")
    in
    if unit_no <> Hfi.node_id (Hfi1_driver.hfi linux_driver) then
      Error
        (Printf.sprintf
           "hfi1-pico: devdata.unit=%d does not match device %d" unit_no
           (Hfi.node_id (Hfi1_driver.hfi linux_driver)))
    else if s99_running = None then
      Error
        "hfi1-pico: sdma_states::sdma_state_s99_running missing from the \
         module's debug info"
    else begin
      let s99_running = Int32.of_int (Option.get s99_running) in
      let num_sdma =
        Int32.to_int
          (Struct_access.read_u32 acc.devdata ~node ~vs
             ~base_va:(Hfi1_driver.devdata_va linux_driver) "num_sdma")
      in
      if num_sdma <= 0 then
        invalid_arg "hfi1-pico: devdata.num_sdma must be positive";
      let t =
        { mck; linux_driver; acc; s99_running; num_sdma; install = None;
          sdma_state_header = Struct_access.c_header acc.sdma_state;
          writev_fallback = 0;
          writev_fast = 0; ioctl_fast = 0; big_requests = 0;
          pt_segments = 0 }
      in
      let dev = Hfi1_driver.dev_name unit_no in
      let inst =
        Framework.install mck
          { Framework.pd_name = "hfi1-picodriver";
            pd_dev = dev;
            pd_writev = Some (fast_writev t);
            pd_ioctls =
              [ (User_api.ioctl_tid_update, fast_tid_update t);
                (User_api.ioctl_tid_free, fast_tid_free t) ] }
      in
      t.install <- Some inst;
      Ok t
    end

(** The Intel HFI1 device driver for Linux (simulated, unmodified by
    PicoDriver — the whole point of the architecture).

    Structure mirrors the real driver: file operations registered with the
    VFS, internal state in kmalloc'd structures laid out per
    {!Hfi1_structs}, SDMA sends built from get_user_pages() results with
    requests {b capped at PAGE_SIZE} (the driver never exploits physical
    contiguity, Section 3.4), expected-receive registration in ioctl(),
    completion processing in the SDMA IRQ handler. *)

open Linux_import

type t

(** Device file name exposed through the VFS. *)
val dev_name : int -> string

(** [probe sim ~node ~hfi ~slab ~gup ~vfs] initialises the driver:
    allocates device data, registers file operations and the SDMA
    completion IRQ handler. *)
val probe :
  Sim.t ->
  node:Node.t ->
  hfi:Hfi.t ->
  slab:Slab.t ->
  gup:Gup.t ->
  vfs:Vfs.t ->
  t

(** Kernel VA of struct hfi1_devdata (the root object the PicoDriver
    starts dereferencing from). *)
val devdata_va : t -> Addr.t

(** Kernel VA of the per_sdma engine array. *)
val per_sdma_va : t -> Addr.t

(** The sdma submit lock — shared with the PicoDriver (Section 3.3). *)
val sdma_lock : t -> Spinlock.t

val tid_lock : t -> Spinlock.t

val hfi : t -> Hfi.t

val slab : t -> Slab.t

val gup : t -> Gup.t

(** Resolve the HFI context behind an open file (follows
    file->private_data->uctxt->ctxt through simulated memory). *)
val context_of_file : t -> Vfs.file -> Hfi.ctx option

(** Per-tid-run pin bookkeeping shared by TID_FREE and the PicoDriver's
    local TID path. *)
val note_tid_pins : t -> tid_base:int -> count:int -> Gup.pin list -> unit

val take_tid_pins : t -> tid_base:int -> (int * Gup.pin list) option

(** Counters. *)

val writev_calls : t -> int

val ioctl_calls : t -> int

val opens : t -> int

(** Completion-IRQ invocations processed so far. *)
val irq_completions : t -> int

lib/mckernel/sched.mli:

lib/apps/umt.ml: Apps_import Collectives Comm List Mpi Sim Workload

(** Sharded open-loop RPC service on the simulated cluster.

    One or more client ranks replay a precomputed {!Arrivals.plan}: each
    request fans out to [serve_fanout] consecutive shard replicas (by
    key) and completes when the slowest replica answers (incast).
    Server ranks run a dispatcher (the only process that blocks on the
    endpoint's rx events — the PSM progress-thread model) feeding
    [serve_workers] service processes through a bounded admission queue;
    over [serve_admit_cap] the request is shed with an eager reject
    reply.  Clients apply a deadline ([serve_timeout]) and a circuit
    breaker: [serve_breaker_threshold] consecutive failures open it,
    arrivals while open are dropped ("tripped"), and it half-open probes
    after a backoff linear in consecutive trips.

    Everything is deterministic: the plan is precomputed from the
    experiment seed, the simulation takes no RNG draws, and every stat
    below is a simulation result — bit-identical shard-on vs shard-off
    and at any [-j].

    Latency ledgers (op ["serve"]): clients record queue (issue/send
    submission), net (to first reply) and reply (to last reply); servers
    record queue (admission to worker pickup), service (compute) and
    reply (response send to completion).  All marks sit on
    result-determined instants. *)

type client_stats = {
  mutable c_arrivals : int;   (** plan entries replayed *)
  mutable c_issued : int;     (** arrivals actually sent (not tripped) *)
  mutable c_ok : int;
  mutable c_shed : int;       (** completed with >= 1 rejected leg *)
  mutable c_late : int;       (** completed past [serve_timeout] *)
  mutable c_tripped : int;    (** arrivals dropped while the breaker was open *)
  mutable c_trips : int;      (** breaker open transitions *)
  mutable c_lats : float list;
  (** end-to-end latency of each ok request, newest first *)
}

type server_stats = {
  mutable s_handled : int;    (** requests admitted and answered *)
  mutable s_shed : int;       (** requests rejected by admission control *)
  mutable s_busy_ns : float;  (** summed service compute (occupancy) *)
}

type rank_stats = Client of client_stats | Server of server_stats

(** Build per-client plans.  [split] is taken at most once — and never
    at the zero-knob defaults, where every plan is empty (the serve
    inertness law; see {!Arrivals.plan}). *)
val plans :
  split:(unit -> Pico_engine.Rng.t) -> clients:int -> Arrivals.plan array

(** [run ~plans ~out comm] — ranks [0 .. Array.length plans - 1] are
    clients, the rest servers (at least one).  Each rank stores its
    stats in [out.(rank)].  Returns the serve-phase span on the calling
    rank, ns. *)
val run :
  plans:Arrivals.plan array -> out:rank_stats option array ->
  Pico_mpi.Comm.t -> float

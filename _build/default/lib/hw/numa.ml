type kind = Mcdram | Ddr4

type domain = {
  id : int;
  kind : kind;
  mem : Physmem.t;
}

type t = { doms : domain array }

let kind_to_string = function Mcdram -> "MCDRAM" | Ddr4 -> "DDR4"

let create ?(base = Addr.mib 16) ~mcdram_domains ~mcdram_per_domain
    ~ddr_domains ~ddr_per_domain () =
  let next = ref base in
  let next_id = ref 0 in
  let mk kind size =
    let mem = Physmem.create ~base:!next ~size in
    let d = { id = !next_id; kind; mem } in
    incr next_id;
    next := !next + size;
    d
  in
  let ddr = List.init ddr_domains (fun _ -> mk Ddr4 ddr_per_domain) in
  let mcdram = List.init mcdram_domains (fun _ -> mk Mcdram mcdram_per_domain) in
  { doms = Array.of_list (ddr @ mcdram) }

let knl_snc4 ?(scale = 1.0) () =
  let sz bytes =
    let scaled = int_of_float (float_of_int bytes *. scale) in
    max Addr.page_size (Addr.align_up scaled Addr.page_size)
  in
  create
    ~mcdram_domains:4 ~mcdram_per_domain:(sz (Addr.gib 4))
    ~ddr_domains:4 ~ddr_per_domain:(sz (Addr.gib 24))
    ()

let domains t = Array.to_list t.doms

let domain t i = t.doms.(i)

let n_domains t = Array.length t.doms

let domains_of_kind t kind =
  List.filter (fun d -> d.kind = kind) (domains t)

let alloc_pref t ~pref ?align n_frames =
  let try_doms doms =
    List.fold_left
      (fun acc d ->
        match acc with
        | Some _ -> acc
        | None ->
          (match Physmem.alloc d.mem ?align n_frames with
           | Some pa -> Some (d, pa)
           | None -> None))
      None doms
  in
  let other = match pref with Mcdram -> Ddr4 | Ddr4 -> Mcdram in
  match try_doms (domains_of_kind t pref) with
  | Some r -> Some r
  | None -> try_doms (domains_of_kind t other)

let owner t pa =
  Array.fold_left
    (fun acc d ->
      match acc with
      | Some _ -> acc
      | None -> if Physmem.contains d.mem pa then Some d else None)
    None t.doms

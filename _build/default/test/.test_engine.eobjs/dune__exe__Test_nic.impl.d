test/test_nic.ml: Alcotest Bytes Char Fabric Hfi Int64 List Option Pico_costs Pico_engine Pico_hw Pico_nic QCheck2 QCheck_alcotest Rcvarray Sdma User_api Wire

(** Inter-Kernel Communication: message rings between McKernel and Linux.

    A channel is a pair of unidirectional queues in shared memory; sending
    costs one cache-crossing message plus an IPI to the peer.  System-call
    delegation rides on this (paper Section 2.1). *)

open Ihk_import

type 'a channel

val create : Sim.t -> name:string -> 'a channel

(** [send ch v] delivers [v] to the peer after the IKC latency.
    Non-blocking for the sender. *)
val send : 'a channel -> 'a -> unit

(** Blocking receive (process context). *)
val recv : 'a channel -> 'a

val pending : 'a channel -> int

val sent_total : 'a channel -> int

(** A request/response pair of channels, as used by the delegator. *)
type ('req, 'resp) pair = {
  to_linux : 'req channel;
  to_lwk : 'resp channel;
}

val create_pair : Sim.t -> name:string -> ('req, 'resp) pair

lib/engine/resource.ml: Queue Sim

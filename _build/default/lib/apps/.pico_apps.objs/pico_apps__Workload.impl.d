lib/apps/workload.ml: Apps_import Collectives Comm Endpoint Float Hashtbl List Mpi Sim

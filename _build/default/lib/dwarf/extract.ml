open Die

type field = {
  f_name : string;
  f_offset : int;
  f_size : int;
  f_ctype : string;
  f_array_len : int option;
  f_is_pointer : bool;
}

type extraction = {
  e_struct : string;
  e_byte_size : int;
  e_fields : field list;
}

(* Size of the type referenced by a DIE, chasing typedefs/arrays. *)
let rec type_info parsed die =
  match die.tag with
  | DW_TAG_base_type | DW_TAG_structure_type | DW_TAG_union_type
  | DW_TAG_enumeration_type ->
    let size =
      match udata_of die DW_AT_byte_size with Some s -> s | None -> 0
    in
    let prefix =
      match die.tag with
      | DW_TAG_structure_type -> "struct "
      | DW_TAG_union_type -> "union "
      | DW_TAG_enumeration_type -> "enum "
      | _ -> ""
    in
    let name =
      match name_of die with Some n -> prefix ^ n | None -> prefix ^ "<anon>"
    in
    (size, name, None, false)
  | DW_TAG_pointer_type ->
    let inner =
      match ref_of die DW_AT_type with
      | Some r ->
        (try
           let _, n, _, _ = type_info parsed (Encode.resolve parsed r) in
           n
         with Not_found -> "void")
      | None -> "void"
    in
    (8, inner ^ " *", None, true)
  | DW_TAG_typedef ->
    (match ref_of die DW_AT_type with
     | Some r ->
       let size, _, arr, ptr = type_info parsed (Encode.resolve parsed r) in
       let name = match name_of die with Some n -> n | None -> "<typedef>" in
       (size, name, arr, ptr)
     | None -> (0, "<typedef>", None, false))
  | DW_TAG_array_type ->
    let elt =
      match ref_of die DW_AT_type with
      | Some r -> Encode.resolve parsed r
      | None -> invalid_arg "Extract: array without element type"
    in
    let elt_size, elt_name, _, _ = type_info parsed elt in
    (* The DWARF header conveniently stores the number of elements. *)
    let count =
      List.fold_left
        (fun acc child ->
          match child.tag with
          | DW_TAG_subrange_type ->
            (match udata_of child DW_AT_upper_bound with
             | Some ub -> Some (ub + 1)
             | None -> acc)
          | _ -> acc)
        None die.children
    in
    let n = match count with Some n -> n | None -> 0 in
    (elt_size * n, elt_name, Some n, false)
  | DW_TAG_compile_unit | DW_TAG_member | DW_TAG_subrange_type
  | DW_TAG_enumerator ->
    invalid_arg "Extract: unexpected DIE in type position"

let find_struct parsed name =
  Die.find_first
    (fun d ->
      d.tag = DW_TAG_structure_type && name_of d = Some name)
    parsed.Encode.root

let extract parsed ~struct_name ~fields =
  match find_struct parsed struct_name with
  | None -> Error (Printf.sprintf "structure '%s' not found in debug info" struct_name)
  | Some sdie ->
    let byte_size =
      match udata_of sdie DW_AT_byte_size with Some s -> s | None -> 0
    in
    let member name =
      List.find_opt
        (fun c -> c.tag = DW_TAG_member && name_of c = Some name)
        sdie.children
    in
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | fname :: rest ->
        (match member fname with
         | None ->
           Error
             (Printf.sprintf "field '%s' not found in struct %s" fname
                struct_name)
         | Some m ->
           let offset =
             match udata_of m DW_AT_data_member_location with
             | Some o -> o
             | None -> 0
           in
           (match ref_of m DW_AT_type with
            | None -> Error (Printf.sprintf "field '%s' has no type" fname)
            | Some r ->
              let tdie =
                try Some (Encode.resolve parsed r) with Not_found -> None
              in
              (match tdie with
               | None ->
                 Error (Printf.sprintf "field '%s': dangling type ref" fname)
               | Some tdie ->
                 let size, ctype, array_len, is_pointer =
                   type_info parsed tdie
                 in
                 build
                   ({ f_name = fname; f_offset = offset; f_size = size;
                      f_ctype = ctype; f_array_len = array_len;
                      f_is_pointer = is_pointer }
                    :: acc)
                   rest)))
    in
    (match build [] fields with
     | Ok e_fields ->
       Ok { e_struct = struct_name; e_byte_size = byte_size; e_fields }
     | Error e -> Error e)

let structs_available parsed =
  let acc = ref [] in
  Die.iter
    (fun d ->
      if d.tag = DW_TAG_structure_type then
        match name_of d with Some n -> acc := n :: !acc | None -> ())
    parsed.Encode.root;
  List.sort_uniq compare !acc

let find_enum parsed name =
  Die.find_first
    (fun d -> d.tag = DW_TAG_enumeration_type && name_of d = Some name)
    parsed.Encode.root

let enumerators parsed ~enum =
  match find_enum parsed enum with
  | None -> []
  | Some edie ->
    List.filter_map
      (fun c ->
        if c.tag <> DW_TAG_enumerator then None
        else begin
          match (name_of c, udata_of c DW_AT_const_value) with
          | Some n, Some v -> Some (n, v)
          | _ -> None
        end)
      edie.children

let enum_value parsed ~enum ~enumerator =
  List.assoc_opt enumerator (enumerators parsed ~enum)

let fields_available parsed ~string_name =
  match find_struct parsed string_name with
  | None -> []
  | Some sdie ->
    List.filter_map
      (fun c -> if c.tag = DW_TAG_member then name_of c else None)
      sdie.children

let render_field b i (f : field) =
  let pad = f.f_offset in
  Buffer.add_string b "\t\tstruct {\n";
  if pad > 0 then
    Buffer.add_string b (Printf.sprintf "\t\t\tchar padding%d[%d];\n" i pad);
  (match f.f_array_len with
   | Some n ->
     Buffer.add_string b
       (Printf.sprintf "\t\t\t%s %s[%d];\n" f.f_ctype f.f_name n)
   | None ->
     Buffer.add_string b (Printf.sprintf "\t\t\t%s %s;\n" f.f_ctype f.f_name));
  Buffer.add_string b "\t\t};\n"

let render_c_header e =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "struct %s {\n" e.e_struct);
  Buffer.add_string b "\tunion {\n";
  Buffer.add_string b
    (Printf.sprintf "\t\tchar whole_struct[%d];\n" e.e_byte_size);
  List.iteri (fun i f -> render_field b i f) e.e_fields;
  Buffer.add_string b "\t};\n";
  Buffer.add_string b "};\n";
  Buffer.contents b

let field e name = List.find (fun f -> f.f_name = name) e.e_fields

open Mck_import

type kind = Original | Unified

(* Translation counts measure how often the LWK leans on its direct map —
   the cheap alternative to a page-table walk or a GUP pin. *)
type t = {
  k : kind;
  mutable translations : int;
}

let create k = { k; translations = 0 }

let kind t = t.k

(* Original McKernel: image at the Linux kernel TEXT base (they overlap),
   own small direct map at an arbitrary private base. *)
let original_image_base = Llayout.kernel_text_base

let original_direct_base = 0xA000_0000_0000

(* Unified: image at the top of the Linux module space, direct map shared
   with Linux. *)
let unified_image_size = Addr.mib 64

let unified_image_base = Llayout.module_top + 1 - unified_image_size

let image_base t =
  match t.k with
  | Original -> original_image_base
  | Unified -> unified_image_base

let direct_map_base t =
  match t.k with
  | Original -> original_direct_base
  | Unified -> Llayout.direct_map_base

let va_of_pa t pa =
  t.translations <- t.translations + 1;
  direct_map_base t + pa

let pa_of_va t va =
  let base = direct_map_base t in
  if va < base then
    invalid_arg
      (Printf.sprintf "Vspace.pa_of_va: %s below direct map" (Addr.to_hex va));
  t.translations <- t.translations + 1;
  va - base

let linux_pointer_valid t va =
  match t.k with
  | Original -> false
  | Unified -> Llayout.in_direct_map va

let image_overlaps_linux t =
  match t.k with
  | Original -> true
  | Unified -> false

let text_visible_in_linux t =
  match t.k with
  | Original -> false
  | Unified -> true

let translations t = t.translations

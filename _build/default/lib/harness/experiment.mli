(** Run an MPI program across a simulated cluster and collect results.

    Each rank becomes a simulation process.  Rank [r] runs on node
    [r / ranks_per_node].  The app callback receives its communicator and
    returns its figure-of-merit time in ns (usually the main-loop wall
    time); the experiment's FOM is the maximum over ranks, like a
    weak-scaled CORAL benchmark. *)

open H_import

type result = {
  fom_ns : float;           (** max over ranks of the app-reported time *)
  wall_ns : float;          (** simulated wall time of the whole run *)
  init_ns : float;          (** max over ranks of MPI_Init time *)
  comms : Comm.t list;      (** per-rank communicators (profiles inside) *)
  cluster : Cluster.t;
}

(** [run cluster ~ranks_per_node app] — blocks (host-side) until the
    simulation drains.
    @raise Failure if any rank raised *)
val run :
  Cluster.t ->
  ranks_per_node:int ->
  (Comm.t -> float) ->
  result

(** Merge the per-rank MPI profiles of a result. *)
val merged_mpi_profile : result -> Stats.Registry.t

(** Merge the per-node McKernel kernel profiles ([None] for Linux). *)
val merged_kernel_profile : result -> Stats.Registry.t option

(** Sum over ranks of total runtime (the %Rt denominator of Table 1). *)
val total_runtime_ns : result -> float

lib/apps/hacc.ml: Apps_import Collectives Comm Mpi Sim Workload

open Linux_import
open Ctype

let u32_base : Ctype.base = { bname = "unsigned int"; byte_size = 4; signed = false }

(* The hfi1 driver's engine state machine (sdma.h). *)
let sdma_states_enumerators =
  [ ("sdma_state_s00_hw_down", 0);
    ("sdma_state_s10_hw_start_up_halt_wait", 1);
    ("sdma_state_s15_hw_start_up_clean_wait", 2);
    ("sdma_state_s20_idle", 3);
    ("sdma_state_s30_sw_clean_up_wait", 4);
    ("sdma_state_s40_hw_clean_up_wait", 5);
    ("sdma_state_s50_hw_halt_wait", 6);
    ("sdma_state_s60_idle_halt_wait", 7);
    ("sdma_state_s80_hw_freeze", 8);
    ("sdma_state_s82_freeze_sw_clean", 9);
    ("sdma_state_s99_running", 10) ]

let sdma_states_enum =
  Enum
    { ename = "sdma_states"; underlying = u32_base;
      enumerators = sdma_states_enumerators }

let kref : decl = { name = "kref"; members = [ ("refcount", u32) ] }

let completion : decl =
  { name = "completion";
    members =
      [ ("done", u32);
        ("wait_head", void_ptr);
        ("wait_tail", void_ptr);
        ("wait_lock", u64) ] }

(* Offsets must land exactly where Listing 1 shows them:
   current_state @ 40, go_s99_running @ 48, previous_state @ 52,
   sizeof = 64. *)
let sdma_state : decl =
  { name = "sdma_state";
    members =
      [ ("kref", Struct kref);              (* 0, 4 bytes *)
        ("comp", Struct completion);        (* 8..40 (8-aligned) *)
        ("current_state", sdma_states_enum);(* 40 *)
        ("current_op", u32);                (* 44 *)
        ("go_s99_running", u32);            (* 48 *)
        ("previous_state", sdma_states_enum);(* 52 *)
        ("previous_op", u32);               (* 56 *)
        ("last_switched", u32) ] }          (* 60; total 64 *)

let sdma_engine : decl =
  { name = "sdma_engine";
    members =
      [ ("dd", void_ptr);
        ("state", Struct sdma_state);
        ("this_idx", u32);
        ("descq_cnt", u32);
        ("descq_tail", u64);
        ("descq_head", u64);
        ("tx_ring", void_ptr) ] }

let hfi1_devdata : decl =
  { name = "hfi1_devdata";
    members =
      [ ("unit", u32);
        ("node", s32);
        ("num_sdma", u32);
        ("flags", u64);
        ("per_sdma", void_ptr); (* -> array of sdma_engine *)
        ("kregbase", void_ptr);
        ("physaddr", u64);
        ("lcb_err", u32);
        ("num_rcv_contexts", u32) ] }

let hfi1_ctxtdata : decl =
  { name = "hfi1_ctxtdata";
    members =
      [ ("ctxt", u32);
        ("cnt", u32);
        ("dd", void_ptr);
        ("flags", u64);
        ("expected_base", u32);
        ("expected_count", u32);
        ("tid_used", u32) ] }

let hfi1_filedata : decl =
  { name = "hfi1_filedata";
    members =
      [ ("dd", void_ptr);   (* -> hfi1_devdata *)
        ("uctxt", void_ptr);(* -> hfi1_ctxtdata *)
        ("subctxt", u32);
        ("tidcursor", u32) ] }

let user_sdma_request : decl =
  { name = "user_sdma_request";
    members =
      [ ("fd", void_ptr);
        ("niovs", u32);
        ("kind", u32);
        ("msg_id", u64);
        ("sent", u64);
        ("npkts", u32);
        ("status", s32) ] }

let all =
  [ kref; completion; sdma_state; sdma_engine; hfi1_devdata; hfi1_ctxtdata;
    hfi1_filedata; user_sdma_request ]

(* Compiled eagerly at module initialisation (before any domain can be
   spawned) so the memo needs no cross-domain synchronisation. *)
let module_binary =
  let sections =
    let c =
      Compile.create
        ~producer:"GNU C 4.8.5 (hfi1.ko, simulated Intel OPA driver)" ()
    in
    List.iter (Compile.add_struct c) all;
    Encode.encode (Compile.finish c)
  in
  fun () -> sections

let field_offset decl name =
  let members = Ctype.layout `Struct decl in
  match List.find_opt (fun m -> m.Ctype.m_name = name) members with
  | Some m -> m.Ctype.m_offset
  | None -> raise Not_found

let struct_size decl = Ctype.sized `Struct decl

let pa_of node va = ignore node; Layout.pa_of_va va

let write_field_u32 node ~decl ~base_va name v =
  Node.write_u32 node (pa_of node base_va + field_offset decl name) v

let read_field_u32 node ~decl ~base_va name =
  Node.read_u32 node (pa_of node base_va + field_offset decl name)

let write_field_u64 node ~decl ~base_va name v =
  Node.write_u64 node (pa_of node base_va + field_offset decl name) v

let read_field_u64 node ~decl ~base_va name =
  Node.read_u64 node (pa_of node base_va + field_offset decl name)

(** Lightweight, globally-toggled event tracing.

    Disabled by default so the hot simulation paths pay only a flag check.
    Enable with [set_level] or the [PICO_TRACE] environment variable
    (values: [off], [info], [debug]). *)

type level = Off | Info | Debug

val set_level : level -> unit

val level : unit -> level

(** [enabled l] — would a message at level [l] be emitted?  Use to guard
    hot-path trace calls whose arguments are expensive to build (lengths,
    [Wire.describe], ...): [if Trace.enabled Debug then Trace.debug ...]. *)
val enabled : level -> bool

(** [info sim "component" fmt ...] prints "[time] component: message" when
    the level is at least [Info]. *)
val info : Sim.t -> string -> ('a, Format.formatter, unit) format -> 'a

val debug : Sim.t -> string -> ('a, Format.formatter, unit) format -> 'a

(** Parse a level name; unknown names map to [Off]. *)
val level_of_string : string -> level

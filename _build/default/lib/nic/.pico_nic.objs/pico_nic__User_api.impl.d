lib/nic/user_api.ml: Addr Bytes Int32 Int64 Nic_import Printf Wire

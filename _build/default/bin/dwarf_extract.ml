(* dwarf-extract-struct: the structure-extraction tool of paper
   Section 3.2.

   Walks the DWARF debugging information of the (simulated) vendor module
   binary and emits a header that contains only the requested fields, each
   at its correct offset, in the padded-union representation of Listing 1.

   Usage:
     dwarf_extract --struct sdma_state current_state go_s99_running
     dwarf_extract --list              # available structures
     dwarf_extract --struct hfi1_devdata --fields   # available fields
     dwarf_extract --enum sdma_states  # enumerators with values *)

open Cmdliner

let parsed () =
  Pico_dwarf.Encode.parse (Pico_linux.Hfi1_structs.module_binary ())

let rec run list_structs struct_name list_fields enum_name fields =
  match enum_name with
  | Some ename ->
    (match Pico_dwarf.Extract.enumerators (parsed ()) ~enum:ename with
     | [] -> `Error (false, Printf.sprintf "no enumeration named %S" ename)
     | es ->
       List.iter (fun (n, v) -> Printf.printf "%s = %d\n" n v) es;
       `Ok ())
  | None ->
    run_structs list_structs struct_name list_fields fields

and run_structs list_structs struct_name list_fields fields =
  if list_structs then begin
    List.iter print_endline (Pico_dwarf.Extract.structs_available (parsed ()));
    `Ok ()
  end
  else begin
    match struct_name with
    | None ->
      `Error (true, "either --list or --struct NAME is required")
    | Some name ->
      if list_fields then begin
        let fs =
          Pico_dwarf.Extract.fields_available (parsed ()) ~string_name:name
        in
        if fs = [] then
          `Error (false, Printf.sprintf "no structure named %S" name)
        else begin
          List.iter print_endline fs;
          `Ok ()
        end
      end
      else if fields = [] then
        `Error (true, "at least one field name is required (or --fields)")
      else begin
        match
          Pico_dwarf.Extract.extract (parsed ()) ~struct_name:name ~fields
        with
        | Ok ex ->
          print_string (Pico_dwarf.Extract.render_c_header ex);
          `Ok ()
        | Error e -> `Error (false, e)
      end
  end

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List structures in the binary.")

let struct_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "struct" ] ~docv:"NAME" ~doc:"Structure to extract.")

let fields_flag =
  Arg.(
    value & flag
    & info [ "fields" ] ~doc:"List the members of the selected structure.")

let fields_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"FIELD")

let enum_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "enum" ] ~docv:"NAME"
        ~doc:"List the enumerators (with values) of an enumeration.")

let cmd =
  let doc =
    "extract structure layouts from the DWARF sections of the HFI1 module \
     binary"
  in
  Cmd.v
    (Cmd.info "dwarf_extract" ~version:"1.0" ~doc)
    Term.(
      ret
        (const run $ list_arg $ struct_arg $ fields_flag $ enum_arg
         $ fields_arg))

let () = exit (Cmd.eval cmd)

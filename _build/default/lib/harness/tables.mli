(** Plain-text rendering of result tables (the benchmark harness prints
    the same rows/series the paper's figures and tables report). *)

(** [render ~header rows] — column-aligned text table. *)
val render : header:string list -> string list list -> string

(** Percentage formatting: [pct 0.934] = ["93.4%"]. *)
val pct : float -> string

val f1 : float -> string

val f2 : float -> string

(** Nanoseconds to a human unit (µs/ms/s) with 2 decimals. *)
val ns : float -> string

(** An ASCII bar of [width] cells filled proportionally to
    [value/scale]. *)
val bar : ?width:int -> value:float -> scale:float -> unit -> string

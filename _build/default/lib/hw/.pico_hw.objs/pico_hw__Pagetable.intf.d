lib/hw/pagetable.mli: Addr

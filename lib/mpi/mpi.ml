open Mpi_import

type request = Endpoint.req

let init comm f = Comm.profiled comm "MPI_Init" f

let init_thread comm f = Comm.profiled comm "MPI_Init_thread" f

let yield_if_pending comm req =
  if not (Endpoint.completed req) then begin
    let os = Endpoint.os comm.Comm.ep in
    os.Endpoint.nanosleep 0.
  end

let isend_raw comm ~dst ~tag ~va ~len =
  Endpoint.isend comm.Comm.ep ~dst ~tag ~va ~len

let irecv_raw comm ~src ~tag ~va ~len =
  Endpoint.irecv comm.Comm.ep ~src ~tag ~va ~len ()

let wait_raw comm req =
  yield_if_pending comm req;
  Endpoint.wait comm.Comm.ep req

let request_free _comm _req = ()

let isend comm ~dst ~tag ~va ~len =
  Comm.profiled comm "MPI_Isend" (fun () ->
      isend_raw comm ~dst ~tag:(Comm.user_tag tag) ~va ~len)

let irecv comm ~src ~tag ~va ~len =
  Comm.profiled comm "MPI_Irecv" (fun () ->
      irecv_raw comm ~src ~tag:(Comm.user_tag tag) ~va ~len)

let wait comm req = Comm.profiled comm "MPI_Wait" (fun () -> wait_raw comm req)

let waitall comm reqs =
  Comm.profiled comm "MPI_Waitall" (fun () ->
      List.iter (wait_raw comm) reqs)

let test comm req =
  Comm.profiled comm "MPI_Test" (fun () -> Endpoint.test comm.Comm.ep req)

let send comm ~dst ~tag ~va ~len =
  Comm.profiled comm "MPI_Send" (fun () ->
      let r = isend_raw comm ~dst ~tag:(Comm.user_tag tag) ~va ~len in
      wait_raw comm r)

let recv comm ~src ~tag ~va ~len =
  Comm.profiled comm "MPI_Recv" (fun () ->
      let r = irecv_raw comm ~src ~tag:(Comm.user_tag tag) ~va ~len in
      wait_raw comm r)

let sendrecv comm ~dst ~src ~stag ~rtag ~sva ~slen ~rva ~rlen =
  Comm.profiled comm "MPI_Sendrecv" (fun () ->
      let r = irecv_raw comm ~src ~tag:(Comm.user_tag rtag) ~va:rva ~len:rlen in
      let s = isend_raw comm ~dst ~tag:(Comm.user_tag stag) ~va:sva ~len:slen in
      wait_raw comm s;
      wait_raw comm r)

(* --- persistent requests -------------------------------------------------- *)

type p_kind = P_send of int | P_recv of int option

type persistent = {
  p_kind : p_kind;
  p_tag : int64;
  p_va : int;
  p_len : int;
  mutable p_active : Endpoint.req option;
}

let send_init _comm ~dst ~tag ~va ~len =
  { p_kind = P_send dst; p_tag = Comm.user_tag tag; p_va = va; p_len = len;
    p_active = None }

let recv_init _comm ~src ~tag ~va ~len =
  { p_kind = P_recv src; p_tag = Comm.user_tag tag; p_va = va; p_len = len;
    p_active = None }

let start comm p =
  Comm.profiled comm "MPI_Start" (fun () ->
      if p.p_active <> None then
        invalid_arg "MPI_Start: request already active";
      let req =
        match p.p_kind with
        | P_send dst ->
          isend_raw comm ~dst ~tag:p.p_tag ~va:p.p_va ~len:p.p_len
        | P_recv src ->
          irecv_raw comm ~src ~tag:p.p_tag ~va:p.p_va ~len:p.p_len
      in
      p.p_active <- Some req)

let wait_p comm p =
  Comm.profiled comm "MPI_Wait" (fun () ->
      match p.p_active with
      | Some req ->
        wait_raw comm req;
        p.p_active <- None
      | None -> ())

let waitall_p comm ps =
  Comm.profiled comm "MPI_Waitall" (fun () ->
      List.iter
        (fun p ->
          match p.p_active with
          | Some req ->
            wait_raw comm req;
            p.p_active <- None
          | None -> ())
        ps)

let request_free_p comm p =
  Comm.profiled comm "MPI_Request_free" (fun () -> p.p_active <- None)

let compute comm d =
  let os = Endpoint.os comm.Comm.ep in
  os.Endpoint.compute d

(* Flows on this rank's node that exhausted the transport retry budget
   against a partitioned fabric (degraded, not lost — see the retry
   ladder in lib/psm/endpoint.ml). *)
let fabric_sends_degraded comm =
  let os = Endpoint.os comm.Comm.ep in
  (Hfi.fabric_fault_stats os.Endpoint.hfi).Fabric.fs_degraded

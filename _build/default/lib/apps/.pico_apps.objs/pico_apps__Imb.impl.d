lib/apps/imb.ml: Apps_import Array Collectives Comm List Mpi Sim Workload

(** Deterministic routing over a {!Topology}.

    Routing is a pure function of [(src, dst, dst_ctx)] — no RNG, no
    adaptive state — so a flow's path is stable across re-runs and
    worker-domain schedules, and packets of one flow stay in order
    (every link is FIFO).  Cross-leaf flows pick their spine by a
    flow hash, the static ECMP-style spreading OmniPath/InfiniBand
    subnet managers configure. *)

type tier = Up | Down | Host

(** One directed link of a route.  [a]/[b] are tier-relative endpoint
    ids: [Up] leaf->spine, [Down] spine->leaf, [Host] leaf->node. *)
type hop = {
  tier : tier;
  a : int;
  b : int;
}

(** Avalanche over the flow triple; deterministic, non-negative. *)
val flow_hash : src:int -> dst:int -> dst_ctx:int -> int

(** The ordered hop list from [src]'s egress to [dst]'s ingress.
    [Flat] and loopback routes are empty; same-leaf routes are the
    destination [Host] hop only; cross-leaf routes are
    [Up; Down; Host] through the flow-hashed spine. *)
val route : Topology.t -> src:int -> dst:int -> dst_ctx:int -> hop list

val tier_name : tier -> string

val describe_hop : hop -> string

(** Raised by {!route_avoiding} when every candidate path between the
    pair crosses a down link: the destination host link is dead, or all
    spines are cut.  Transport layers turn this into bounded
    backoff/retry (see [lib/psm]); it never escapes the NIC facade into
    the engine. *)
exception Fabric_unreachable of { src : int; dst : int; dst_ctx : int }

(** [route_avoiding topo ~down ~src ~dst ~dst_ctx] is failover routing:
    spine candidates are probed in the deterministic ECMP order
    [(flow_hash + k) mod n_spines], k = 0, 1, ... — so when [down] holds
    nowhere the result is bit-identical to {!route} — and the first
    all-up path wins.  [down] must be pure over the caller's failure
    epoch.  Returns the hops and whether the flow re-routed (k > 0);
    raises {!Fabric_unreachable} when the pair is partitioned. *)
val route_avoiding :
  Topology.t -> down:(hop -> bool) ->
  src:int -> dst:int -> dst_ctx:int -> hop list * bool

(** Per-instance route cache.  {!route} is pure in [(src, dst, dst_ctx)]
    by invariant, so memoizing it is semantics-free; the table is
    per-instance (never module-level) so sweep points share no mutable
    state.  [Memo.route m] is always equal to [route m.topo] on the same
    triple — qcheck-enforced in [test/test_scale.ml]. *)
module Memo : sig
  type t

  (** [create ?shards topo] sizes the cache for [shards] independent
      slots (default 1): sharded fabrics give every shard its own table
      so concurrent-epoch lookups never interleave in one hashtable. *)
  val create : ?shards:int -> Topology.t -> t

  (** [route ?shard m] looks up in slot [shard] (default 0).  All slots
      return identical hop lists — they cache the same pure function.
      Equivalent to {!route_epoch} at epoch 0 (the immortal fabric). *)
  val route : ?shard:int -> t -> src:int -> dst:int -> dst_ctx:int -> hop list

  (** Epoch-keyed failover lookup: memoizes {!Route.route_avoiding} per
      [(src, dst, dst_ctx, epoch)].  [down] must be the pure down
      predicate of exactly that epoch (callers derive it from
      [Linkfault.down_in_epoch]); {!Route.Fabric_unreachable} is never
      memoized and propagates fresh on every probe. *)
  val route_epoch :
    ?shard:int -> t -> epoch:int -> down:(hop -> bool) ->
    src:int -> dst:int -> dst_ctx:int -> hop list * bool
end

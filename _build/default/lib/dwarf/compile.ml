open Die

type t = {
  producer : string;
  mutable next_id : int;
  mutable top : die list; (* reversed *)
  memo : (string, int) Hashtbl.t; (* type key -> die id *)
}

let create ?(producer = "pico-cc 1.0 (simulated)") () =
  { producer; next_id = 1; top = []; memo = Hashtbl.create 64 }

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let type_key ty = Ctype.to_c_string ty

(* Returns the DIE id describing [ty], creating DIEs as needed. *)
let rec die_of_type t (ty : Ctype.t) : int =
  let key = type_key ty in
  match Hashtbl.find_opt t.memo key with
  | Some id -> id
  | None ->
    (match ty with
     | Ctype.Base b ->
       let id = fresh t in
       Hashtbl.add t.memo key id;
       let encoding =
         if b.bname = "_Bool" then dw_ate_boolean
         else if b.byte_size = 1 then
           if b.signed then dw_ate_signed_char else dw_ate_unsigned_char
         else if b.signed then dw_ate_signed
         else dw_ate_unsigned
       in
       t.top <-
         { id; tag = DW_TAG_base_type;
           attrs =
             [ (DW_AT_name, String b.bname);
               (DW_AT_byte_size, Udata b.byte_size);
               (DW_AT_encoding, Udata encoding) ];
           children = [] }
         :: t.top;
       id
     | Ctype.Pointer inner ->
       (* Reserve our id first so recursive structures terminate. *)
       let id = fresh t in
       Hashtbl.add t.memo key id;
       let inner_id = die_of_type t inner in
       t.top <-
         { id; tag = DW_TAG_pointer_type;
           attrs = [ (DW_AT_byte_size, Udata 8); (DW_AT_type, Ref inner_id) ];
           children = [] }
         :: t.top;
       id
     | Ctype.Array (elt, n) ->
       let id = fresh t in
       Hashtbl.add t.memo key id;
       let elt_id = die_of_type t elt in
       let sub = fresh t in
       t.top <-
         { id; tag = DW_TAG_array_type;
           attrs = [ (DW_AT_type, Ref elt_id) ];
           children =
             [ { id = sub; tag = DW_TAG_subrange_type;
                 attrs = [ (DW_AT_upper_bound, Udata (n - 1)) ];
                 children = [] } ] }
         :: t.top;
       id
     | Ctype.Enum { ename; underlying; enumerators } ->
       let id = fresh t in
       Hashtbl.add t.memo key id;
       let children =
         List.map
           (fun (name, value) ->
             { id = fresh t; tag = DW_TAG_enumerator;
               attrs =
                 [ (DW_AT_name, String name); (DW_AT_const_value, Udata value) ];
               children = [] })
           enumerators
       in
       t.top <-
         { id; tag = DW_TAG_enumeration_type;
           attrs =
             [ (DW_AT_name, String ename);
               (DW_AT_byte_size, Udata underlying.byte_size) ];
           children }
         :: t.top;
       id
     | Ctype.Typedef (name, inner) ->
       let id = fresh t in
       Hashtbl.add t.memo key id;
       let inner_id = die_of_type t inner in
       t.top <-
         { id; tag = DW_TAG_typedef;
           attrs = [ (DW_AT_name, String name); (DW_AT_type, Ref inner_id) ];
           children = [] }
         :: t.top;
       id
     | Ctype.Struct d -> aggregate t `Struct d key
     | Ctype.Union d -> aggregate t `Union d key)

and aggregate t kind (d : Ctype.decl) key =
  let id = fresh t in
  Hashtbl.add t.memo key id;
  let members = Ctype.layout kind d in
  let children =
    List.map
      (fun (m : Ctype.laid_member) ->
        let ty_id = die_of_type t m.m_type in
        { id = fresh t; tag = DW_TAG_member;
          attrs =
            [ (DW_AT_name, String m.m_name);
              (DW_AT_type, Ref ty_id);
              (DW_AT_data_member_location, Udata m.m_offset) ];
          children = [] })
      members
  in
  let tag =
    match kind with
    | `Struct -> DW_TAG_structure_type
    | `Union -> DW_TAG_union_type
  in
  t.top <-
    { id; tag;
      attrs =
        [ (DW_AT_name, String d.name);
          (DW_AT_byte_size, Udata (Ctype.sized kind d)) ];
      children }
    :: t.top;
  id

let add_struct t d = ignore (die_of_type t (Ctype.Struct d))

let add_union t d = ignore (die_of_type t (Ctype.Union d))

let finish t =
  { id = 0; tag = DW_TAG_compile_unit;
    attrs = [ (DW_AT_producer, String t.producer) ];
    children = List.rev t.top }

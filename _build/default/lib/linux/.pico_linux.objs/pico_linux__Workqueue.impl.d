lib/linux/workqueue.ml: Linux_import List Mailbox Resource Sim

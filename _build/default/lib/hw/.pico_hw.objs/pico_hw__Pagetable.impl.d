lib/hw/pagetable.ml: Addr Array List

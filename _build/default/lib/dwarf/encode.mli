(** Serialise a DIE tree to binary DWARF sections and parse it back.

    The wire format is genuine DWARF v4 structure: a [.debug_abbrev]
    section of abbreviation declarations and a [.debug_info] section whose
    compilation unit header is followed by abbrev-coded DIEs.  Forms used:
    [DW_FORM_string] (0x08), [DW_FORM_udata] (0x0f) and [DW_FORM_ref4]
    (0x13, CU-relative). *)

type sections = {
  debug_abbrev : string;
  debug_info : string;
}

(** Serialise the compile-unit DIE (as produced by {!Compile.finish}). *)
val encode : Die.die -> sections

(** Parsed image: the root DIE plus an offset-indexed view for resolving
    [DW_AT_type] references.  After parsing, every DIE's [id] is its
    [.debug_info] offset — just as a real DWARF consumer sees it. *)
type parsed = {
  root : Die.die;
  by_offset : (int, Die.die) Hashtbl.t;
}

(** @raise Invalid_argument on malformed input *)
val parse : sections -> parsed

(** Resolve a [DW_AT_type] reference.
    @raise Not_found *)
val resolve : parsed -> int -> Die.die

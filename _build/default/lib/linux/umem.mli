(** Kernel access to user memory (copy_from_user / copy_to_user).

    Walks the caller's page tables and touches simulated physical memory,
    charging copy bandwidth. *)

open Linux_import

(** [copy_from_user node ~pt ~va ~len] returns the bytes at user address
    [va].
    @raise Pico_hw.Pagetable.Not_mapped on a fault *)
val copy_from_user : Node.t -> pt:Pagetable.t -> va:Addr.t -> len:int -> bytes

val copy_to_user : Node.t -> pt:Pagetable.t -> va:Addr.t -> bytes -> unit

(** Charge the simulated copy cost for [len] bytes to the calling
    process. *)
val charge_copy : Sim.t -> int -> unit

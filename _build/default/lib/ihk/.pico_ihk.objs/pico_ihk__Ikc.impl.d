lib/ihk/ikc.ml: Costs Ihk_import Mailbox Sim

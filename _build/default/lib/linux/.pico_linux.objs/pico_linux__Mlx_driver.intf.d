lib/linux/mlx_driver.mli: Addr Gup Linux_import Node Sim Slab Spinlock Vfs

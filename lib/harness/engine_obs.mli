(** Event-engine observability: how much simulation work a figure did and
    how fast the host chewed through it.

    Every completed simulation reports its {!Pico_engine.Sim} counters via
    {!note_sim} (thread-safe: sweep points finish on pool worker domains);
    {!measure} brackets one figure, turning the accumulated window into
    [engine/*] metrics in {!Report}:

    - [engine/events]: events actually processed by the event loops
    - [engine/events_elided]: events avoided by semantics-preserving
      batching (packet trains charged in closed form)
    - [engine/cells_reused]: process resumptions served from the
      simulator's free list (closure allocations avoided)
    - [engine/peak_heap]: deepest event queue over the figure's sims
    - [engine/sims]: number of simulated worlds
    - [engine/host_seconds]: host wall-clock for the figure
    - [engine/events_per_sec]: processed events per host second
    - [engine/equiv_events_per_sec]: (processed + elided) per host second
      — the throughput in {e per-packet-equivalent} events, comparable
      across batching changes; [scripts/perf.sh] gates on this

    Figures that ran sharded experiments additionally report
    [engine/shards/*] — sharded sims, total shard count, barrier rounds,
    epochs elided by skip-ahead, cross-shard events merged at barriers,
    and the min/max per-shard event count (load balance).  These keys
    are zero-omitted: absent whenever sharding is off, so the default
    JSON stays byte-identical.  [engine/cells_reused] and
    [engine/peak_heap] aggregate across shards inside {!Sim} (sum of
    per-shard pools, max of per-shard high-water marks).

    {!note_sim} also drains spans into {!Tracefile} and latency ledgers
    into {!Breakdown}, and counts spans begun but never ended (discarded
    at drain) — reported as the zero-omitted [trace/dropped_open] key so
    a figure whose trace silently lost spans is visible in the JSON.

    Host wall-clock is used {e only} here, and only ends up in the JSON
    report (never on stdout), so `picobench` output stays byte-identical
    across hosts and runs. *)

(** [note_sim sim] adds a finished simulation's engine counters to the
    current window. *)
val note_sim : Pico_engine.Sim.t -> unit

(** Sharding requests refused on genuinely unshardable configs are
    counted by {!Cluster.shard_refusals}; {!measure} reports the
    per-figure delta as the zero-omitted [engine/shards/refused] key. *)

(** [measure ~figure f] runs [f] in a fresh window and records the
    [engine/*] metrics for [figure] into {!Report}. *)
val measure : figure:string -> (unit -> 'a) -> 'a

(** [host_timed ~figure ~metric f] runs [f] (inside a {!measure} window)
    and records its host wall-clock seconds as [figure/metric] — for a
    sub-sweep whose wall clock is a figure of merit of its own, like the
    scale figure's fat-tree tail ([engine/ft_host_seconds], a warn-only
    FOM in [scripts/perf.sh]).  Like [engine/host_seconds] the value is
    JSON-only and masked by check.sh's byte-diff. *)
val host_timed : figure:string -> metric:string -> (unit -> 'a) -> 'a

lib/psm/proto.mli: Psm_import Wire

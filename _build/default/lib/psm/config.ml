let eager_threshold = ref 65536

let window_size = ref (1024 * 1024)

let pipeline_depth = ref 2

let tid_cache = ref false

let reset () =
  eager_threshold := 65536;
  window_size := 1024 * 1024;
  pipeline_depth := 2;
  tid_cache := false

lib/apps/nekbone.ml: Apps_import Collectives Comm List Sim Workload

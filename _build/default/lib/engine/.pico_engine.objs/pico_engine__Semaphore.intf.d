lib/engine/semaphore.mli: Sim
